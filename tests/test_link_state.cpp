// Tests for the per-STA link-state machine (mac/link_state.hpp): the
// SNR-threshold boundaries it shares with rate_for_snr, the health
// transition table, determinism of the MCS schedule, the snapshot's
// AP-slot contract, and the suspension backoff schedule.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "carpool/transceiver.hpp"
#include "mac/link_state.hpp"
#include "mac/rate_adaptation.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

namespace carpool::mac {
namespace {

AckFeedback outcome(bool delivered, double time) {
  AckFeedback fb;
  fb.time = time;
  fb.ack_ok = delivered;
  fb.frames_ok = delivered ? 1 : 0;
  fb.frames_failed = delivered ? 0 : 1;
  return fb;
}

// ----------------------------------------------------- threshold table

TEST(RateForSnr, ExactlyAtEachThreshold) {
  for (std::size_t i = 0; i < std::size(kHtThresholds); ++i) {
    EXPECT_DOUBLE_EQ(rate_for_snr(kHtThresholds[i]), kHtRates[i])
        << "threshold " << kHtThresholds[i];
  }
}

TEST(RateForSnr, JustBelowEachThreshold) {
  // 0.1 dB under a threshold must select the previous rung (the base
  // rate below the first threshold).
  for (std::size_t i = 0; i < std::size(kHtThresholds); ++i) {
    const double expect = i == 0 ? kHtRates[0] : kHtRates[i - 1];
    EXPECT_DOUBLE_EQ(rate_for_snr(kHtThresholds[i] - 0.1), expect)
        << "threshold " << kHtThresholds[i];
  }
}

TEST(RateForSnr, JustAboveEachThreshold) {
  // Thresholds are >= 2 dB apart, so +0.1 dB stays on the same rung.
  for (std::size_t i = 0; i < std::size(kHtThresholds); ++i) {
    EXPECT_DOUBLE_EQ(rate_for_snr(kHtThresholds[i] + 0.1), kHtRates[i])
        << "threshold " << kHtThresholds[i];
  }
}

TEST(RateForSnr, MachineCeilingMatchesTable) {
  // With rate adaptation only, the machine's decision is exactly the
  // static table lookup at every boundary.
  LinkPolicyConfig policy;
  policy.rate_adaptation = true;
  for (std::size_t i = 0; i < std::size(kHtThresholds); ++i) {
    for (const double delta : {-0.1, 0.0, 0.1}) {
      LinkStateMachine machine(policy, 1, 65e6);
      machine.observe_snr(1, kHtThresholds[i] + delta);
      EXPECT_DOUBLE_EQ(machine.rate_bps(1),
                       rate_for_snr(kHtThresholds[i] + delta));
    }
  }
}

// ----------------------------------------------------- transition table

TEST(LinkStateMachine, FullHealthCycle) {
  // Healthy -> Degraded -> ... -> Suspended -> Probing -> ... -> Healthy,
  // with every intermediate decision recorded.
  LinkPolicyConfig policy;
  policy.rate_adaptation = true;
  policy.feedback = true;
  policy.suspension = true;
  policy.down_after = 1;
  policy.up_after = 1;
  policy.suspend_after = 1;
  policy.record_transitions = true;
  LinkStateMachine machine(policy, 1, 65e6);
  machine.observe_snr(1, 30.0);  // ceiling = MCS7
  ASSERT_EQ(machine.state(1).health, LinkHealth::kHealthy);
  ASSERT_EQ(machine.state(1).rate_index, 7u);

  double t = 0.0;
  // First failure: one step down, Healthy -> Degraded.
  machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kDegraded);
  EXPECT_EQ(machine.state(1).rate_index, 6u);

  // Keep failing: the machine sheds rate all the way to the floor
  // instead of suspending (degraded links shed rate first).
  for (int i = 0; i < 6; ++i) machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kDegraded);
  EXPECT_EQ(machine.state(1).rate_index, 0u);
  EXPECT_EQ(machine.suspensions(), 0u);

  // Failure at the floor: Degraded -> Suspended.
  machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kSuspended);
  EXPECT_EQ(machine.suspensions(), 1u);
  EXPECT_TRUE(machine.snapshot().blocked(1));

  // Timeout expiry: Suspended -> Probing, schedulable again.
  machine.advance(t + policy.initial_timeout + 1e-6);
  EXPECT_EQ(machine.state(1).health, LinkHealth::kProbing);
  EXPECT_EQ(machine.probes(), 1u);
  EXPECT_FALSE(machine.snapshot().blocked(1));

  // Successful probes climb back to the ceiling: Probing -> Degraded ->
  // ... -> Healthy.
  t += policy.initial_timeout;
  machine.on_feedback(1, outcome(true, t += 1e-3));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kDegraded);
  for (int i = 0; i < 6; ++i) machine.on_feedback(1, outcome(true, t += 1e-3));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kHealthy);
  EXPECT_EQ(machine.state(1).rate_index, 7u);

  // The recorded trace visits all four states in order.
  const auto& log = machine.transitions();
  ASSERT_GE(log.size(), 4u);
  EXPECT_EQ(log.front().from, LinkHealth::kHealthy);
  EXPECT_EQ(log.front().to, LinkHealth::kDegraded);
  EXPECT_EQ(log.back().to, LinkHealth::kHealthy);
  bool saw_suspended = false, saw_probing = false;
  for (const LinkTransition& tr : log) {
    if (tr.to == LinkHealth::kSuspended) saw_suspended = true;
    if (tr.to == LinkHealth::kProbing) {
      EXPECT_TRUE(saw_suspended);
      saw_probing = true;
    }
  }
  EXPECT_TRUE(saw_probing);
  EXPECT_EQ(machine.transition_count(), log.size());
}

TEST(LinkStateMachine, FailedProbeResuspendsWithDoubledTimeout) {
  LinkPolicyConfig policy;
  policy.suspension = true;
  policy.suspend_after = 2;
  LinkStateMachine machine(policy, 1, 65e6);

  double t = 0.0;
  machine.on_feedback(1, outcome(false, t += 1e-3));
  machine.on_feedback(1, outcome(false, t += 1e-3));
  ASSERT_EQ(machine.state(1).health, LinkHealth::kSuspended);
  const double first_until = machine.state(1).suspended_until;
  EXPECT_NEAR(first_until - t, policy.initial_timeout, 1e-9);

  machine.advance(first_until + 1e-6);
  ASSERT_EQ(machine.state(1).health, LinkHealth::kProbing);

  // A failed probe goes straight back to Suspended, timeout doubled.
  t = first_until + 1e-3;
  machine.on_feedback(1, outcome(false, t));
  ASSERT_EQ(machine.state(1).health, LinkHealth::kSuspended);
  EXPECT_NEAR(machine.state(1).suspended_until - t,
              2.0 * policy.initial_timeout, 1e-9);
  EXPECT_EQ(machine.suspensions(), 2u);
}

TEST(LinkStateMachine, BackoffDoublesUpToCapAndResetsOnDelivery) {
  LinkPolicyConfig policy;
  policy.suspension = true;
  policy.suspend_after = 1;
  policy.initial_timeout = 10e-3;
  policy.max_timeout = 40e-3;
  LinkStateMachine machine(policy, 1, 65e6);

  double t = 0.0;
  double expected = policy.initial_timeout;
  for (int round = 0; round < 5; ++round) {
    machine.on_feedback(1, outcome(false, t));
    ASSERT_EQ(machine.state(1).health, LinkHealth::kSuspended);
    EXPECT_NEAR(machine.state(1).suspended_until - t, expected, 1e-9)
        << "round " << round;
    t = machine.state(1).suspended_until + 1e-6;
    machine.advance(t);
    expected = std::min(2.0 * expected, policy.max_timeout);
  }
  // Delivery resets the schedule to the initial timeout.
  machine.on_feedback(1, outcome(true, t));
  EXPECT_EQ(machine.state(1).health, LinkHealth::kHealthy);
  machine.on_feedback(1, outcome(false, t + 1e-3));
  EXPECT_NEAR(machine.state(1).suspended_until - (t + 1e-3),
              policy.initial_timeout, 1e-9);
}

TEST(LinkStateMachine, AllLayersOffNeverLeavesHealthy) {
  LinkStateMachine machine(LinkPolicyConfig{}, 2, 65e6);
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    machine.on_feedback(1, outcome(false, t += 1e-3));
    machine.advance(t);
  }
  EXPECT_EQ(machine.state(1).health, LinkHealth::kHealthy);
  EXPECT_EQ(machine.transition_count(), 0u);
  EXPECT_DOUBLE_EQ(machine.rate_bps(1), 0.0);  // "use the default rate"
  EXPECT_TRUE(machine.snapshot().empty());
}

// ------------------------------------------------ delivery-ratio window

TEST(LinkStateMachine, DeliveryWindowTracksOutcomes) {
  LinkPolicyConfig policy;
  policy.feedback = true;
  policy.window = 4;
  policy.down_after = 100;  // keep the rate still
  LinkStateMachine machine(policy, 1, 65e6);

  EXPECT_DOUBLE_EQ(machine.state(1).delivery_ratio(), 1.0);  // no data yet
  double t = 0.0;
  machine.on_feedback(1, outcome(true, t += 1e-3));
  machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_DOUBLE_EQ(machine.state(1).delivery_ratio(), 0.5);
  machine.on_feedback(1, outcome(false, t += 1e-3));
  machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_DOUBLE_EQ(machine.state(1).delivery_ratio(), 0.25);
  // The window slides: a fifth outcome evicts the oldest (a success).
  machine.on_feedback(1, outcome(false, t += 1e-3));
  EXPECT_DOUBLE_EQ(machine.state(1).delivery_ratio(), 0.0);
}

// -------------------------------------------------------- determinism

TEST(LinkStateMachine, IdenticalFeedbackYieldsIdenticalSchedule) {
  LinkPolicyConfig policy;
  policy.rate_adaptation = true;
  policy.feedback = true;
  policy.suspension = true;
  policy.down_after = 2;
  policy.up_after = 3;
  policy.record_transitions = true;

  auto run = [&policy]() {
    LinkStateMachine machine(policy, 3, 65e6);
    for (NodeId sta = 1; sta <= 3; ++sta) {
      machine.observe_snr(sta, 10.0 + 5.0 * static_cast<double>(sta));
    }
    std::vector<double> schedule;
    double t = 0.0;
    // A fixed but irregular success pattern, interleaved across STAs.
    for (int i = 0; i < 400; ++i) {
      const NodeId sta = static_cast<NodeId>(1 + (i * 7) % 3);
      const bool success = ((i * i + 3 * i) % 5) != 0;
      machine.on_feedback(sta, outcome(success, t += 1e-3));
      machine.advance(t);
      for (NodeId q = 1; q <= 3; ++q) schedule.push_back(machine.rate_bps(q));
    }
    return std::make_pair(schedule, machine.transitions().size());
  };

  const auto [schedule_a, transitions_a] = run();
  const auto [schedule_b, transitions_b] = run();
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(transitions_a, transitions_b);
}

TEST(LinkStateMachine, SimulatorScheduleIsDeterministic) {
  auto run = []() {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 6;
    cfg.duration = 3.0;
    cfg.seed = 7;
    cfg.sta_snr_db = {30, 25, 20, 15, 12, 9};
    cfg.link_policy.rate_adaptation = true;
    cfg.link_policy.feedback = true;
    cfg.link_policy.suspension = true;
    cfg.link_policy.record_transitions = true;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 6; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 600, 0.01));
    }
    return sim.run();
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_DOUBLE_EQ(a.downlink_goodput_bps, b.downlink_goodput_bps);
  EXPECT_EQ(a.ls_transitions, b.ls_transitions);
  EXPECT_EQ(a.ls_rate_downgrades, b.ls_rate_downgrades);
  EXPECT_EQ(a.ls_rate_upgrades, b.ls_rate_upgrades);
  ASSERT_EQ(a.link_transitions.size(), b.link_transitions.size());
  for (std::size_t i = 0; i < a.link_transitions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.link_transitions[i].time, b.link_transitions[i].time);
    EXPECT_EQ(a.link_transitions[i].sta, b.link_transitions[i].sta);
    EXPECT_EQ(a.link_transitions[i].to, b.link_transitions[i].to);
  }
}

// --------------------------------------------------- AP-slot contract

TEST(LinkSnapshot, ApSlotThrows) {
  const LinkSnapshot snapshot(
      {LinkDecision{}, LinkDecision{26e6, true}, LinkDecision{0.0, false}});
  EXPECT_THROW((void)snapshot.rate_bps(kApNode), std::logic_error);
  EXPECT_THROW((void)snapshot.blocked(kApNode), std::logic_error);
  EXPECT_DOUBLE_EQ(snapshot.rate_bps(1), 26e6);
  EXPECT_TRUE(snapshot.blocked(2));
  // Beyond the table: defaults, not a throw (late-joining queue slots).
  EXPECT_DOUBLE_EQ(snapshot.rate_bps(9), 0.0);
  EXPECT_FALSE(snapshot.blocked(9));
}

TEST(LinkSnapshot, EmptySnapshotHasDefaultsForEverySta) {
  const LinkSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.rate_bps(3), 0.0);
  EXPECT_FALSE(empty.blocked(3));
  EXPECT_THROW((void)empty.rate_bps(kApNode), std::logic_error);
}

TEST(LinkStateMachine, ApAndOutOfRangeQueriesThrow) {
  LinkStateMachine machine(LinkPolicyConfig{}, 2, 65e6);
  EXPECT_THROW((void)machine.state(kApNode), std::logic_error);
  EXPECT_THROW((void)machine.rate_bps(kApNode), std::logic_error);
  EXPECT_THROW(machine.observe_snr(kApNode, 20.0), std::logic_error);
  EXPECT_THROW((void)machine.state(3), std::out_of_range);
  EXPECT_THROW(machine.on_feedback(5, outcome(true, 0.0)),
               std::out_of_range);
}

// ----------------------------------------------- decode-result bridge

TEST(FeedbackFromDecode, CountsFcsVerdicts) {
  CarpoolRxResult rx;
  rx.matched = {0, 1, 2};
  rx.subframes.resize(3);
  rx.subframes[0].fcs_ok = true;
  rx.subframes[1].fcs_ok = false;
  rx.subframes[2].fcs_ok = true;
  const AckFeedback fb = feedback_from_decode(rx, 1.25);
  EXPECT_DOUBLE_EQ(fb.time, 1.25);
  EXPECT_EQ(fb.frames_ok, 2u);
  EXPECT_EQ(fb.frames_failed, 1u);
  EXPECT_TRUE(fb.delivered());
}

TEST(FeedbackFromDecode, UnreachedMatchesCountAsLost) {
  CarpoolRxResult rx;
  rx.matched = {0, 1, 2};   // Bloom said three subframes were ours...
  rx.subframes.resize(1);   // ...but the walk only reached one.
  rx.subframes[0].fcs_ok = true;
  const AckFeedback fb = feedback_from_decode(rx, 0.5);
  EXPECT_EQ(fb.frames_ok, 1u);
  EXPECT_EQ(fb.frames_failed, 2u);
}

TEST(FeedbackFromDecode, EmptyDecodeIsOneLostSubunit) {
  const AckFeedback fb = feedback_from_decode(CarpoolRxResult{}, 2.0);
  EXPECT_EQ(fb.frames_ok, 0u);
  EXPECT_EQ(fb.frames_failed, 1u);
  EXPECT_FALSE(fb.delivered());
}

// ---------------------------------------------- bursty-channel policy

TEST(GilbertElliott, StateIsDeterministicAndOrderIndependent) {
  GilbertElliottPhyModel::Params params;
  params.seed = 42;
  const GilbertElliottPhyModel model(nullptr, params);
  std::vector<bool> forward;
  for (double t = 0.0; t < 1.0; t += 7e-3) forward.push_back(model.bad_at(t));
  // A second instance queried in reverse order sees the same chain: state
  // at time t is a pure function of (seed, t).
  const GilbertElliottPhyModel again(nullptr, params);
  std::size_t i = forward.size();
  std::vector<double> grid;
  for (double t = 0.0; t < 1.0; t += 7e-3) grid.push_back(t);
  for (auto it = grid.rbegin(); it != grid.rend(); ++it) {
    EXPECT_EQ(again.bad_at(*it), forward[--i]) << "t=" << *it;
  }
}

TEST(GilbertElliott, BadStateRaisesErrorProbability) {
  GilbertElliottPhyModel::Params params;
  params.p_good_to_bad = 0.5;
  params.p_bad_to_good = 0.1;
  params.bad_snr_penalty_db = 20.0;
  params.seed = 3;
  const GilbertElliottPhyModel model(
      std::make_shared<AnalyticPhyModel>(), params);
  const AnalyticPhyModel clean;
  SubframeChannelQuery query;
  query.snr_db = 25.0;
  query.num_symbols = 40;
  bool saw_bad = false;
  for (double t = 0.0; t < 2.0; t += params.period) {
    query.time = t;
    if (model.bad_at(t)) {
      saw_bad = true;
      EXPECT_GT(model.subframe_error_prob(query),
                clean.subframe_error_prob(query));
    } else {
      EXPECT_DOUBLE_EQ(model.subframe_error_prob(query),
                       clean.subframe_error_prob(query));
    }
  }
  EXPECT_TRUE(saw_bad);  // p_good_to_bad = 0.5 over 400 steps
}

}  // namespace
}  // namespace carpool::mac
