#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "carpool/bloom.hpp"
#include "carpool/side_channel.hpp"
#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

// ---------------------------------------------------------------- Bloom

TEST(Bloom, NoFalseNegatives) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    AggregationBloomFilter filter(4);
    std::vector<MacAddress> receivers;
    const std::size_t n = 1 + rng.uniform_int(kMaxReceivers);
    for (std::size_t i = 0; i < n; ++i) {
      receivers.push_back(MacAddress::for_station(
          static_cast<std::uint32_t>(rng.uniform_int(1 << 20))));
      filter.insert(receivers.back(), i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(filter.matches(receivers[i], i));
      const auto matched = filter.matched_subframes(receivers[i]);
      EXPECT_TRUE(std::find(matched.begin(), matched.end(), i) !=
                  matched.end());
    }
  }
}

TEST(Bloom, BitsRoundTrip) {
  AggregationBloomFilter filter(4);
  filter.insert(MacAddress::for_station(7), 0);
  filter.insert(MacAddress::for_station(9), 1);
  const Bits bits = filter.to_bits();
  ASSERT_EQ(bits.size(), kAhdrBits);
  const auto restored = AggregationBloomFilter::from_bits(bits, 4);
  EXPECT_EQ(restored.to_bits(), bits);
  EXPECT_TRUE(restored.matches(MacAddress::for_station(7), 0));
  EXPECT_TRUE(restored.matches(MacAddress::for_station(9), 1));
}

TEST(Bloom, PositionEncodedInHashSet) {
  // A receiver must not (except for rare false positives) match the wrong
  // subframe index.
  Rng rng(2);
  RatioCounter wrong_index;
  for (int trial = 0; trial < 500; ++trial) {
    AggregationBloomFilter filter(4);
    const MacAddress a = MacAddress::for_station(
        static_cast<std::uint32_t>(rng.uniform_int(1 << 20)));
    filter.insert(a, 0);
    wrong_index.add(filter.matches(a, 1));
  }
  // With only 4 bits set, P[fp] ~ (4/48)^4 ~ 5e-5.
  EXPECT_LT(wrong_index.ratio(), 0.01);
}

TEST(Bloom, OptimalHashCountFormula) {
  // h = (48/N) ln 2: N=4 -> 8.3, N=8 -> 4.2, N=12 -> 2.8.
  EXPECT_EQ(optimal_hash_count(4), 8u);
  EXPECT_EQ(optimal_hash_count(8), 4u);
  EXPECT_EQ(optimal_hash_count(12), 3u);
  EXPECT_GE(optimal_hash_count(48), 1u);
  EXPECT_THROW((void)optimal_hash_count(0), std::invalid_argument);
}

TEST(Bloom, TheoreticalFpMatchesPaperRange) {
  // Paper Sec. 4.1: for 4-8 receivers the false positive ratio ranges
  // from 0.31% (N=4 at its optimal h=8) to 5.59% (N=8 at h=4).
  EXPECT_NEAR(theoretical_fp_rate(4, optimal_hash_count(4)), 0.0031, 0.0005);
  EXPECT_NEAR(theoretical_fp_rate(8, optimal_hash_count(8)), 0.0559, 0.005);
}

TEST(Bloom, EmpiricalFpRateNearTheory) {
  Rng rng(3);
  for (const std::size_t n : {4u, 8u}) {
    RatioCounter fp;
    for (int trial = 0; trial < 4000; ++trial) {
      AggregationBloomFilter filter(4);
      for (std::size_t i = 0; i < n; ++i) {
        filter.insert(MacAddress::for_station(static_cast<std::uint32_t>(
                          rng.uniform_int(1 << 24))),
                      i);
      }
      // A non-member station.
      const MacAddress outsider = MacAddress::for_station(
          static_cast<std::uint32_t>((1u << 24) + trial));
      fp.add(filter.matches(outsider, rng.uniform_int(n)));
    }
    const double theory = theoretical_fp_rate(n, 4);
    EXPECT_NEAR(fp.ratio(), theory, theory * 0.5 + 0.002) << "N=" << n;
  }
}

TEST(Bloom, OverheadVersusMacAddressList) {
  // Paper: listing 8 MAC addresses needs 384 bits; A-HDR is 48 bits
  // -> 12.5% of that.
  EXPECT_DOUBLE_EQ(static_cast<double>(kAhdrBits) / (48.0 * 8.0), 0.125);
}

TEST(Bloom, InsertOutOfRangeThrows) {
  AggregationBloomFilter filter(4);
  EXPECT_THROW(filter.insert(MacAddress::for_station(1), kMaxReceivers),
               std::invalid_argument);
}

// --------------------------------------------------------- side channel

TEST(SideChannel, Table1OneBitMapping) {
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kOneBit, 1), kPi / 2, 1e-12);
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kOneBit, 0), -kPi / 2, 1e-12);
}

TEST(SideChannel, Table1TwoBitMapping) {
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kTwoBit, 0b11), kPi / 4, 1e-12);
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kTwoBit, 0b10),
              3 * kPi / 4, 1e-12);
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kTwoBit, 0b00),
              -3 * kPi / 4, 1e-12);
  EXPECT_NEAR(phase_delta_for_bits(PhaseMod::kTwoBit, 0b01), -kPi / 4,
              1e-12);
}

class PhaseModParam : public ::testing::TestWithParam<PhaseMod> {};

TEST_P(PhaseModParam, DeltaDecisionRoundTrip) {
  const PhaseMod mod = GetParam();
  const unsigned count = 1u << side_bits_per_symbol(mod);
  for (unsigned bits = 0; bits < count; ++bits) {
    const double delta = phase_delta_for_bits(mod, bits);
    EXPECT_EQ(bits_for_phase_delta(mod, delta), bits);
    // Robust to +-30 degrees of inherent drift.
    EXPECT_EQ(bits_for_phase_delta(mod, delta + 0.5), bits);
    EXPECT_EQ(bits_for_phase_delta(mod, delta - 0.5), bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Mods, PhaseModParam,
                         ::testing::Values(PhaseMod::kOneBit,
                                           PhaseMod::kTwoBit));

TEST(SideChannel, EncoderAccumulatesAndWraps) {
  // Conveying "11 11 10" requires offsets 45, 90, 225->-135 (Fig. 8 logic).
  std::vector<Bits> blocks(3, Bits(48, 0));
  // Use a scheme whose CRC we can predict by monkey-testing decode below;
  // here just check accumulation with the raw encoder via known CRCs.
  const SymbolCrcScheme scheme{PhaseMod::kTwoBit, 1};
  const auto offsets = encode_side_channel(blocks, scheme);
  ASSERT_EQ(offsets.size(), 3u);
  // All blocks identical -> same CRC -> same delta each time.
  const double delta0 = offsets[0];
  EXPECT_NEAR(wrap_angle(offsets[1] - offsets[0]), delta0, 1e-12);
  EXPECT_NEAR(wrap_angle(offsets[2] - offsets[1]), delta0, 1e-12);
}

TEST(SideChannel, DecoderVerifiesCleanSymbols) {
  Rng rng(5);
  const SymbolCrcScheme scheme{PhaseMod::kTwoBit, 1};
  std::vector<Bits> blocks;
  for (int s = 0; s < 20; ++s) {
    Bits b(96);
    for (auto& bit : b) bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    blocks.push_back(std::move(b));
  }
  const auto offsets = encode_side_channel(blocks, scheme);

  SideChannelDecoder decoder(scheme);
  decoder.set_reference_phase(0.0);
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    const auto outcome = decoder.next_symbol(offsets[s], blocks[s]);
    ASSERT_TRUE(outcome.group_verified.has_value());
    EXPECT_TRUE(*outcome.group_verified);
  }
}

TEST(SideChannel, DecoderRejectsCorruptedSymbols) {
  Rng rng(6);
  const SymbolCrcScheme scheme{PhaseMod::kTwoBit, 1};
  std::vector<Bits> blocks;
  for (int s = 0; s < 50; ++s) {
    Bits b(96);
    for (auto& bit : b) bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    blocks.push_back(std::move(b));
  }
  const auto offsets = encode_side_channel(blocks, scheme);

  SideChannelDecoder decoder(scheme);
  decoder.set_reference_phase(0.0);
  int rejected = 0;
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    Bits corrupted = blocks[s];
    corrupted[rng.uniform_int(corrupted.size())] ^= 1u;  // 1-bit error
    const auto outcome = decoder.next_symbol(offsets[s], corrupted);
    ASSERT_TRUE(outcome.group_verified.has_value());
    if (!*outcome.group_verified) ++rejected;
  }
  // CRC-2 catches all single-bit errors.
  EXPECT_EQ(rejected, 50);
}

TEST(SideChannel, GroupSchemesShareCrc) {
  Rng rng(7);
  const SymbolCrcScheme scheme{PhaseMod::kOneBit, 3};  // CRC-3 per 3 symbols
  EXPECT_EQ(scheme.crc_width(), 3u);
  std::vector<Bits> blocks;
  for (int s = 0; s < 9; ++s) {
    Bits b(48);
    for (auto& bit : b) bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    blocks.push_back(std::move(b));
  }
  const auto offsets = encode_side_channel(blocks, scheme);
  SideChannelDecoder decoder(scheme);
  decoder.set_reference_phase(0.0);
  int verdicts = 0;
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    const auto outcome = decoder.next_symbol(offsets[s], blocks[s]);
    if (outcome.group_verified.has_value()) {
      ++verdicts;
      EXPECT_TRUE(*outcome.group_verified);
    }
  }
  EXPECT_EQ(verdicts, 3);  // one verdict per completed 3-symbol group
}

TEST(SideChannel, DecoderRequiresReference) {
  SideChannelDecoder decoder(SymbolCrcScheme{});
  const Bits bits(48, 0);
  EXPECT_THROW((void)decoder.next_symbol(0.0, bits), std::logic_error);
}

TEST(SideChannel, ResidualCfoDriftTolerated) {
  // Superimpose a slow inherent drift (residual CFO) on the injected
  // offsets; differences still decode.
  Rng rng(8);
  const SymbolCrcScheme scheme{PhaseMod::kTwoBit, 1};
  std::vector<Bits> blocks;
  for (int s = 0; s < 30; ++s) {
    Bits b(96);
    for (auto& bit : b) bit = static_cast<std::uint8_t>(rng.uniform_int(2));
    blocks.push_back(std::move(b));
  }
  const auto offsets = encode_side_channel(blocks, scheme);
  SideChannelDecoder decoder(scheme);
  const double drift_per_symbol = 0.12;  // ~7 deg/symbol inherent drift
  decoder.set_reference_phase(0.0);
  for (std::size_t s = 0; s < blocks.size(); ++s) {
    const double measured = wrap_angle(
        offsets[s] + drift_per_symbol * static_cast<double>(s + 1));
    const auto outcome = decoder.next_symbol(measured, blocks[s]);
    ASSERT_TRUE(outcome.group_verified.has_value());
    EXPECT_TRUE(*outcome.group_verified);
  }
}

// ----------------------------------------------------------- transceiver

std::vector<SubframeSpec> make_subframes(std::size_t count, std::size_t bytes,
                                         std::size_t mcs_index, Rng& rng) {
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < count; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(bytes, rng)), mcs_index});
  }
  return subframes;
}

TEST(CarpoolLoopback, CleanChannelAllReceiversDecode) {
  Rng rng(11);
  const auto subframes = make_subframes(3, 200, 4, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  for (std::size_t i = 0; i < subframes.size(); ++i) {
    CarpoolRxConfig cfg;
    cfg.self = subframes[i].receiver;
    const CarpoolReceiver rx(cfg);
    const CarpoolRxResult result = rx.receive(wave);
    ASSERT_TRUE(result.ahdr_decoded);
    ASSERT_FALSE(result.matched.empty());
    bool found = false;
    for (const DecodedSubframe& sub : result.subframes) {
      if (sub.index == i) {
        EXPECT_TRUE(sub.decoded);
        EXPECT_TRUE(sub.fcs_ok);
        EXPECT_EQ(sub.psdu, subframes[i].psdu);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "receiver " << i;
  }
}

TEST(CarpoolLoopback, MixedMcsSubframes) {
  Rng rng(12);
  std::vector<SubframeSpec> subframes;
  const std::size_t mcs_choices[] = {0, 3, 5, 7};
  for (std::size_t i = 0; i < 4; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 10)),
        append_fcs(random_psdu(80 + 60 * i, rng)), mcs_choices[i]});
  }
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  for (std::size_t i = 0; i < subframes.size(); ++i) {
    CarpoolRxConfig cfg;
    cfg.self = subframes[i].receiver;
    const CarpoolReceiver rx(cfg);
    const auto result = rx.receive(wave);
    bool ok = false;
    for (const auto& sub : result.subframes) {
      if (sub.index == i && sub.fcs_ok) ok = true;
    }
    EXPECT_TRUE(ok) << i;
  }
}

TEST(CarpoolLoopback, IrrelevantStaDropsWithoutDecoding) {
  Rng rng(13);
  const auto subframes = make_subframes(4, 150, 4, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  // Find an outsider whose Bloom check comes up empty (false positives are
  // possible, so scan a few candidates).
  for (std::uint32_t candidate = 1000; candidate < 1100; ++candidate) {
    CarpoolRxConfig cfg;
    cfg.self = MacAddress::for_station(candidate);
    const CarpoolReceiver rx(cfg);
    const auto result = rx.receive(wave);
    ASSERT_TRUE(result.ahdr_decoded);
    if (result.matched.empty()) {
      EXPECT_EQ(result.symbols_full_decoded, 0u);
      EXPECT_TRUE(result.subframes.empty());
      return;  // success
    }
  }
  FAIL() << "no candidate with empty Bloom match in 100 tries";
}

TEST(CarpoolLoopback, ReceiverSkipsForeignSubframes) {
  Rng rng(14);
  const auto subframes = make_subframes(4, 150, 4, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  CarpoolRxConfig cfg;
  cfg.self = subframes[2].receiver;  // third subframe
  const CarpoolReceiver rx(cfg);
  const auto result = rx.receive(wave);
  // Subframes 0 and 1 should be skipped via pilot-only processing (unless
  // a false positive matched them).
  const std::size_t full = result.subframes.size();
  EXPECT_GE(result.symbols_pilot_only, 1u);
  EXPECT_LE(full, result.matched.size());
  bool mine = false;
  for (const auto& sub : result.subframes) {
    if (sub.index == 2) mine = sub.fcs_ok;
  }
  EXPECT_TRUE(mine);
}

TEST(CarpoolLoopback, FadingChannelWithRte) {
  Rng rng(15);
  const auto subframes = make_subframes(2, 400, 5, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  FadingConfig ch_cfg;
  ch_cfg.seed = 42;
  ch_cfg.snr_db = 30.0;
  ch_cfg.coherence_time = 20e-3;
  ch_cfg.cfo_hz = 8e3;
  FadingChannel channel(ch_cfg);
  const CxVec rx_wave = channel.transmit(wave);

  CarpoolRxConfig cfg;
  cfg.self = subframes[1].receiver;
  cfg.use_rte = true;
  const CarpoolReceiver rx(cfg);
  const auto result = rx.receive(rx_wave);
  bool ok = false;
  std::size_t rte_updates = 0;
  for (const auto& sub : result.subframes) {
    if (sub.index == 1) {
      ok = sub.fcs_ok;
      rte_updates = sub.rte_updates;
    }
  }
  EXPECT_TRUE(ok);
  EXPECT_GT(rte_updates, 0u);
}

TEST(CarpoolLoopback, RteImprovesLongFrameTailBer) {
  // Long 64-QAM frame over a fast-varying channel: the tail-symbol raw BER
  // with RTE must beat standard preamble-only estimation (Fig. 13 shape).
  Rng rng(16);
  const auto subframes = make_subframes(1, 3000, 7, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  // Reference coded bits for per-symbol BER.
  const Mcs& m = mcs(7);
  const Bits coded =
      code_data_bits(build_data_bits(subframes[0].psdu, m), m);

  double err_rte = 0, err_std = 0;
  std::size_t bits_counted = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FadingConfig ch_cfg;
    ch_cfg.seed = seed + 100;
    ch_cfg.snr_db = 33.0;          // office LOS regime of Fig. 3/13
    ch_cfg.rician_los = true;
    ch_cfg.rician_k_db = 10.0;
    ch_cfg.coherence_time = 4.5e-3;
    FadingChannel ch_a(ch_cfg);
    const CxVec rx_wave = ch_a.transmit(wave);

    for (const bool use_rte : {true, false}) {
      CarpoolRxConfig cfg;
      cfg.self = subframes[0].receiver;
      cfg.use_rte = use_rte;
      const CarpoolReceiver rx(cfg);
      const auto result = rx.receive(rx_wave);
      ASSERT_FALSE(result.subframes.empty());
      const auto& sub = result.subframes.front();
      // Count raw errors over the last quarter of the frame.
      const std::size_t n = sub.raw_symbol_bits.size();
      for (std::size_t s = 3 * n / 4; s < n; ++s) {
        const auto& got = sub.raw_symbol_bits[s];
        const std::span<const std::uint8_t> want(coded.data() + s * m.n_cbps,
                                                 m.n_cbps);
        const std::size_t errors = hamming_distance(got, want);
        if (use_rte) {
          err_rte += static_cast<double>(errors);
          bits_counted += m.n_cbps;
        } else {
          err_std += static_cast<double>(errors);
        }
      }
    }
  }
  ASSERT_GT(bits_counted, 0u);
  EXPECT_LT(err_rte, err_std * 0.5)
      << "RTE tail BER " << err_rte / bits_counted << " vs standard "
      << err_std / bits_counted;
}

TEST(CarpoolTransmitter, ValidatesInput) {
  const CarpoolTransmitter tx;
  std::vector<SubframeSpec> none;
  EXPECT_THROW((void)tx.build(none), std::invalid_argument);

  Rng rng(17);
  auto too_many = make_subframes(9, 50, 0, rng);
  EXPECT_THROW((void)tx.build(too_many), std::invalid_argument);

  std::vector<SubframeSpec> empty_psdu{
      SubframeSpec{MacAddress::for_station(1), Bytes{}, 0}};
  EXPECT_THROW((void)tx.build(empty_psdu), std::invalid_argument);
}

TEST(CarpoolTransmitter, AirtimeAccounting) {
  Rng rng(18);
  const auto subframes = make_subframes(2, 100, 0, rng);
  const std::size_t symbols = CarpoolTransmitter::frame_symbols(subframes);
  // 2 A-HDR + 2x(1 SIG + ceil((16 + (100+4 FCS)*8 + 6)/24) = 36 data).
  EXPECT_EQ(symbols, 2 + 2 * (1 + 36));
  EXPECT_NEAR(CarpoolTransmitter::frame_airtime(subframes),
              16e-6 + static_cast<double>(symbols) * 4e-6, 1e-9);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  EXPECT_EQ(wave.size(), kPreambleLen + symbols * kSymbolLen);
}

TEST(CarpoolTransmitter, SideChannelInjectionTogglable) {
  Rng rng(19);
  const auto subframes = make_subframes(1, 64, 2, rng);
  CarpoolFrameConfig with;
  CarpoolFrameConfig without;
  without.inject_side_channel = false;
  const CxVec wave_with = CarpoolTransmitter(with).build(subframes);
  const CxVec wave_without = CarpoolTransmitter(without).build(subframes);
  ASSERT_EQ(wave_with.size(), wave_without.size());
  // Preamble + A-HDR identical; payload symbols differ by rotation.
  const std::size_t payload_start = kPreambleLen + 2 * kSymbolLen;
  double preamble_diff = 0, payload_diff = 0;
  for (std::size_t i = 0; i < payload_start; ++i) {
    preamble_diff += std::abs(wave_with[i] - wave_without[i]);
  }
  for (std::size_t i = payload_start; i < wave_with.size(); ++i) {
    payload_diff += std::abs(wave_with[i] - wave_without[i]);
  }
  EXPECT_NEAR(preamble_diff, 0.0, 1e-9);
  EXPECT_GT(payload_diff, 1.0);
}

TEST(CarpoolReceiver, PlainPhyFrameDecodes) {
  // Frames built without injection decode with side_channel_present=false
  // (the MU-Aggregation baseline's PHY).
  Rng rng(20);
  const auto subframes = make_subframes(2, 120, 4, rng);
  CarpoolFrameConfig txcfg;
  txcfg.inject_side_channel = false;
  const CxVec wave = CarpoolTransmitter(txcfg).build(subframes);

  CarpoolRxConfig cfg;
  cfg.self = subframes[0].receiver;
  cfg.side_channel_present = false;
  cfg.use_rte = false;
  const CarpoolReceiver rx(cfg);
  const auto result = rx.receive(wave);
  bool ok = false;
  for (const auto& sub : result.subframes) {
    if (sub.index == 0) ok = sub.fcs_ok;
  }
  EXPECT_TRUE(ok);
  for (const auto& sub : result.subframes) {
    EXPECT_EQ(sub.rte_updates, 0u);
  }
}

TEST(CarpoolReceiver, TooShortWaveform) {
  CarpoolRxConfig cfg;
  cfg.self = MacAddress::for_station(1);
  const CarpoolReceiver rx(cfg);
  const CxVec wave(200, Cx{});
  const auto result = rx.receive(wave);
  EXPECT_FALSE(result.ahdr_decoded);
}

TEST(CarpoolReceiver, MaxReceiversFrame) {
  Rng rng(21);
  const auto subframes = make_subframes(kMaxReceivers, 60, 2, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  CarpoolRxConfig cfg;
  cfg.self = subframes[kMaxReceivers - 1].receiver;  // last subframe
  const CarpoolReceiver rx(cfg);
  const auto result = rx.receive(wave);
  bool ok = false;
  for (const auto& sub : result.subframes) {
    if (sub.index == kMaxReceivers - 1) ok = sub.fcs_ok;
  }
  EXPECT_TRUE(ok);
  EXPECT_EQ(result.subframes_walked, kMaxReceivers);
}

}  // namespace
}  // namespace carpool
