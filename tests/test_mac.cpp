#include <gtest/gtest.h>

#include <cmath>

#include "mac/aggregation.hpp"
#include "mac/energy.hpp"
#include "mac/params.hpp"
#include "mac/phy_model.hpp"
#include "mac/rate_adaptation.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

namespace carpool::mac {
namespace {

// ------------------------------------------------------------ parameters

TEST(Params, Table2Defaults) {
  const MacParams p;
  EXPECT_DOUBLE_EQ(p.slot_time, 9e-6);
  EXPECT_DOUBLE_EQ(p.sifs, 10e-6);
  EXPECT_DOUBLE_EQ(p.difs, 28e-6);
  EXPECT_EQ(p.cw_min, 15u);
  EXPECT_EQ(p.cw_max, 1023u);
  EXPECT_DOUBLE_EQ(p.plcp_header, 28e-6);
  EXPECT_DOUBLE_EQ(p.propagation_delay, 1e-6);
}

TEST(Params, NavEquations) {
  const MacParams p;
  const double t_ack = p.ack_duration();
  // Eq. (1): NAV_data = t_payload + N (t_ACK + t_SIFS).
  EXPECT_NEAR(nav_data(p, 500e-6, 4), 500e-6 + 4 * (t_ack + p.sifs), 1e-12);
  // Eq. (2): NAV_i = (i-1)(t_ACK + t_SIFS); the first receiver waits SIFS
  // only, the last ACK sets NAV_1 = 0.
  EXPECT_DOUBLE_EQ(nav_i(p, 1), 0.0);
  EXPECT_NEAR(nav_i(p, 3), 2 * (t_ack + p.sifs), 1e-12);
  EXPECT_THROW((void)nav_i(p, 0), std::invalid_argument);
}

TEST(Params, AckShorterThanData) {
  const MacParams p;
  EXPECT_LT(p.ack_duration(), p.plcp_header + 1e-3);
  EXPECT_GT(p.ack_duration(), p.plcp_header);
  EXPECT_GT(p.rts_duration(), p.cts_duration());
}

// ------------------------------------------------------------- phy model

TEST(AnalyticPhy, MonotoneInSnr) {
  const AnalyticPhyModel model;
  SubframeChannelQuery q;
  q.num_symbols = 20;
  q.snr_db = 5.0;
  const double low = model.subframe_error_prob(q);
  q.snr_db = 30.0;
  const double high = model.subframe_error_prob(q);
  EXPECT_GT(low, high);
  EXPECT_LT(high, 0.05);
}

TEST(AnalyticPhy, BerBiasWithoutRte) {
  // Error probability grows with the subframe's position (Fig. 3).
  const AnalyticPhyModel model;
  SubframeChannelQuery q;
  q.snr_db = 25.0;
  q.num_symbols = 30;
  q.coherence_time = 2e-3;
  q.rte = false;
  q.start_symbol = 0;
  const double front = model.subframe_error_prob(q);
  q.start_symbol = 300;
  const double rear = model.subframe_error_prob(q);
  EXPECT_GT(rear, front);
}

TEST(AnalyticPhy, RteFlattensBias) {
  const AnalyticPhyModel model;
  SubframeChannelQuery q;
  q.snr_db = 25.0;
  q.num_symbols = 30;
  q.coherence_time = 2e-3;
  q.rte = true;
  q.start_symbol = 0;
  const double front = model.subframe_error_prob(q);
  q.start_symbol = 300;
  const double rear = model.subframe_error_prob(q);
  EXPECT_NEAR(rear, front, 1e-9);

  // And RTE strictly beats standard estimation for rear subframes.
  q.rte = false;
  EXPECT_GT(model.subframe_error_prob(q), rear);
}

TEST(AnalyticPhy, FasterChannelHurtsMore) {
  const AnalyticPhyModel model;
  SubframeChannelQuery q;
  q.snr_db = 25.0;
  q.num_symbols = 30;
  q.start_symbol = 150;
  q.coherence_time = 20e-3;
  const double slow = model.subframe_error_prob(q);
  q.coherence_time = 1e-3;
  const double fast = model.subframe_error_prob(q);
  EXPECT_GT(fast, slow);
}

TEST(AnalyticPhy, ControlFramesRobust) {
  const AnalyticPhyModel model;
  // Control frames ride MCS0-class robustness: reliable down to ~0 dB,
  // lost deep below that.
  EXPECT_LT(model.control_error_prob(25.0), 1e-6);
  EXPECT_LT(model.control_error_prob(0.0), 0.1);
  EXPECT_GT(model.control_error_prob(-18.0), 0.3);
}

TEST(PerfectPhy, NeverFails) {
  const PerfectPhyModel model;
  SubframeChannelQuery q;
  q.snr_db = -100.0;
  q.num_symbols = 1000;
  EXPECT_DOUBLE_EQ(model.subframe_error_prob(q), 0.0);
  EXPECT_DOUBLE_EQ(model.control_error_prob(-100.0), 0.0);
}

// ------------------------------------------------------------ ApQueues

MacFrame make_frame(NodeId dst, std::size_t bytes, double t) {
  MacFrame f;
  f.src = kApNode;
  f.dst = dst;
  f.payload_bytes = bytes;
  f.enqueue_time = t;
  return f;
}

TEST(ApQueues, SingleFramePerTxopFor80211) {
  ApQueues q;
  q.enqueue(make_frame(1, 100, 0.0));
  q.enqueue(make_frame(1, 100, 0.1));
  q.enqueue(make_frame(2, 100, 0.2));
  const MacParams p;
  const Transmission tx = q.build(Scheme::kDcf80211, p, {}, 1.0);
  ASSERT_EQ(tx.subunits.size(), 1u);
  EXPECT_EQ(tx.subunits[0].frames.size(), 1u);
  EXPECT_EQ(tx.subunits[0].dst, 1u);  // oldest first
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_FALSE(tx.sequential_ack);
}

TEST(ApQueues, AmpduAggregatesOneSta) {
  ApQueues q;
  for (int i = 0; i < 5; ++i) {
    q.enqueue(make_frame(1, 200, 0.01 * i));
  }
  q.enqueue(make_frame(2, 200, 0.001));  // older but different STA
  const MacParams p;
  // STA 1's head frame (t=0) is older than STA 2's (t=0.001).
  const Transmission tx = q.build(Scheme::kAmpdu, p, {}, 1.0);
  ASSERT_EQ(tx.subunits.size(), 1u);
  EXPECT_EQ(tx.subunits[0].dst, 1u);  // oldest head-of-line wins
  EXPECT_EQ(tx.subunits[0].frames.size(), 5u);  // aggregated
  const Transmission tx2 = q.build(Scheme::kAmpdu, p, {}, 1.0);
  ASSERT_EQ(tx2.subunits.size(), 1u);
  EXPECT_EQ(tx2.subunits[0].dst, 2u);
}

TEST(ApQueues, CarpoolAggregatesAcrossStas) {
  ApQueues q;
  for (NodeId sta = 1; sta <= 12; ++sta) {
    q.enqueue(make_frame(sta, 150, 0.01 * sta));
  }
  const MacParams p;
  AggregationPolicy policy;
  const Transmission tx = q.build(Scheme::kCarpool, p, policy, 1.0);
  EXPECT_EQ(tx.subunits.size(), policy.max_receivers);  // capped at 8
  EXPECT_TRUE(tx.sequential_ack);
  // Oldest 8 STAs selected.
  for (const SubUnit& su : tx.subunits) EXPECT_LE(su.dst, 8u);
  EXPECT_EQ(q.depth(), 4u);
}

TEST(ApQueues, AggregateByteCapRespected) {
  ApQueues q;
  for (NodeId sta = 1; sta <= 8; ++sta) {
    for (int i = 0; i < 3; ++i) q.enqueue(make_frame(sta, 1400, 0.0));
  }
  const MacParams p;
  AggregationPolicy policy;
  policy.max_aggregate_bytes = 8000;
  const Transmission tx = q.build(Scheme::kCarpool, p, policy, 1.0);
  std::size_t total = 0;
  for (const SubUnit& su : tx.subunits) total += su.bytes;
  EXPECT_LE(total, policy.max_aggregate_bytes + 1500 + 100);
  EXPECT_GE(total, 4000u);
}

TEST(ApQueues, SubframeByteCapRespected) {
  ApQueues q;
  for (int i = 0; i < 10; ++i) q.enqueue(make_frame(1, 1400, 0.0));
  const MacParams p;
  AggregationPolicy policy;  // max_subframe_bytes = 4095
  const Transmission tx = q.build(Scheme::kCarpool, p, policy, 1.0);
  ASSERT_EQ(tx.subunits.size(), 1u);
  EXPECT_LE(tx.subunits[0].bytes, policy.max_subframe_bytes);
  EXPECT_GE(tx.subunits[0].frames.size(), 2u);
}

TEST(ApQueues, RequeueFrontRestoresOrder) {
  ApQueues q;
  q.enqueue(make_frame(1, 100, 0.0));
  q.enqueue(make_frame(1, 100, 0.1));
  const MacParams p;
  Transmission tx = q.build(Scheme::kAmpdu, p, {}, 1.0);
  ASSERT_EQ(tx.subunits[0].frames.size(), 2u);
  EXPECT_TRUE(q.empty());
  q.requeue_front(tx.subunits[0]);
  EXPECT_EQ(q.depth(), 2u);
  const Transmission tx2 = q.build(Scheme::kAmpdu, p, {}, 1.0);
  EXPECT_DOUBLE_EQ(tx2.subunits[0].frames[0].enqueue_time, 0.0);
}

TEST(ApQueues, DropExpired) {
  ApQueues q;
  q.enqueue(make_frame(1, 100, 0.0));
  q.enqueue(make_frame(1, 100, 5.0));
  q.enqueue(make_frame(2, 100, 1.0));
  EXPECT_EQ(q.drop_expired(6.0, 2.0), 2u);  // t=0 and t=1 expired
  EXPECT_EQ(q.depth(), 1u);
}

TEST(ApQueues, CarpoolDurationIncludesAhdrAndSigs) {
  ApQueues q;
  q.enqueue(make_frame(1, 500, 0.0));
  q.enqueue(make_frame(2, 500, 0.0));
  const MacParams p;
  const Transmission tx = q.build(Scheme::kCarpool, p, {}, 1.0);
  ASSERT_EQ(tx.subunits.size(), 2u);
  double payload = 0.0;
  for (const SubUnit& su : tx.subunits) {
    payload += p.payload_duration(8 * static_cast<std::uint64_t>(su.bytes));
  }
  // PLCP + 2 A-HDR symbols + 2 SIG symbols + payloads.
  EXPECT_NEAR(tx.data_duration,
              p.plcp_header + 4 * MacParams::symbol_duration + payload,
              1e-12);
  // Subframe 2 starts after subframe 1's payload.
  EXPECT_GT(tx.subunits[1].start_symbol, tx.subunits[0].start_symbol);
}

TEST(ApQueues, MuAggregationPaysAddressHeader) {
  ApQueues q1, q2;
  for (NodeId sta = 1; sta <= 4; ++sta) {
    q1.enqueue(make_frame(sta, 300, 0.0));
    q2.enqueue(make_frame(sta, 300, 0.0));
  }
  const MacParams p;
  const Transmission mu = q1.build(Scheme::kMuAggregation, p, {}, 1.0);
  const Transmission cp = q2.build(Scheme::kCarpool, p, {}, 1.0);
  ASSERT_EQ(mu.subunits.size(), 4u);
  ASSERT_EQ(cp.subunits.size(), 4u);
  // MU header: 4 x 48 bits at 6.5 Mbps ~= 29.5 us.
  // Carpool: A-HDR 8 us + 4 SIG symbols 16 us = 24 us.
  EXPECT_GT(mu.data_duration, cp.data_duration);
}

TEST(BuildSingleFrame, Geometry) {
  const MacParams p;
  MacFrame f = make_frame(3, 1000, 0.5);
  f.src = 3;
  f.dst = kApNode;
  const Transmission tx = build_single_frame(f, p);
  ASSERT_EQ(tx.subunits.size(), 1u);
  EXPECT_EQ(tx.src, 3u);
  EXPECT_NEAR(tx.data_duration,
              p.plcp_header + 8.0 * 1028.0 / p.data_rate_bps, 1e-12);
  EXPECT_GE(tx.subunits[0].num_symbols, 1u);
}

// --------------------------------------------------------------- energy

TEST(Energy, AccumulatorAndPowerModel) {
  EnergyAccumulator acc;
  acc.add_tx(1.0);
  acc.add_rx(2.0);
  EXPECT_DOUBLE_EQ(acc.idle_seconds(10.0), 7.0);
  const PowerModel power;
  EXPECT_NEAR(acc.joules(10.0), 1.71 + 2 * 1.66 + 7 * 1.22, 1e-9);
}

TEST(Energy, IdleClampsAtZero) {
  EnergyAccumulator acc;
  acc.add_tx(8.0);
  acc.add_rx(5.0);
  EXPECT_DOUBLE_EQ(acc.idle_seconds(10.0), 0.0);
}

// ------------------------------------------------------------ simulator

SimConfig base_config(Scheme scheme, std::size_t stas, double duration) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_stas = stas;
  cfg.duration = duration;
  cfg.seed = 11;
  cfg.default_snr_db = 30.0;
  return cfg;
}

TEST(Simulator, LightLoadDeliversEverything) {
  SimConfig cfg = base_config(Scheme::kDcf80211, 2, 5.0);
  cfg.phy = std::make_shared<PerfectPhyModel>();
  Simulator sim(cfg);
  sim.add_flow(traffic::make_cbr_flow(1, 500, 0.05));  // 80 kbit/s
  const SimResult result = sim.run();
  EXPECT_GT(result.dl_frames_delivered, 90u);
  EXPECT_EQ(result.dl_frames_dropped, 0u);
  EXPECT_NEAR(result.downlink_goodput_bps, 500 * 8 / 0.05, 6000.0);
  EXPECT_LT(result.mean_delay_s, 0.01);
  EXPECT_EQ(result.collisions, 0u);  // single contender
}

TEST(Simulator, DeterministicForSeed) {
  auto run_once = [] {
    SimConfig cfg = base_config(Scheme::kCarpool, 10, 3.0);
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 10; ++sta) {
      sim.add_flow(traffic::make_voip_flow(sta));
    }
    return sim.run();
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.dl_frames_delivered, b.dl_frames_delivered);
  EXPECT_DOUBLE_EQ(a.downlink_goodput_bps, b.downlink_goodput_bps);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(Simulator, CollisionsHappenWithManyUplinkContenders) {
  SimConfig cfg = base_config(Scheme::kDcf80211, 20, 3.0);
  cfg.phy = std::make_shared<PerfectPhyModel>();
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 20; ++sta) {
    sim.add_flow(traffic::make_poisson_flow(sta, 0.01,
                                            traffic::TraceKind::kSigcomm,
                                            /*uplink=*/true));
  }
  const SimResult result = sim.run();
  EXPECT_GT(result.collisions, 10u);
  EXPECT_GT(result.ul_frames_delivered, 100u);
}

TEST(Simulator, CarpoolBeats80211UnderContention) {
  // The headline effect: many STAs with bidirectional VoIP plus uplink
  // background traffic congest the AP (traffic asymmetry, Sec. 2).
  SimResult results[2];
  const Scheme schemes[2] = {Scheme::kCarpool, Scheme::kDcf80211};
  for (int s = 0; s < 2; ++s) {
    SimConfig cfg = base_config(schemes[s], 30, 8.0);
    cfg.coherence_time = 5e-3;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 30; ++sta) {
      for (auto& flow :
           traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
        sim.add_flow(std::move(flow));
      }
      for (auto& flow : traffic::make_sigcomm_background(sta)) {
        sim.add_flow(std::move(flow));
      }
    }
    results[s] = sim.run();
  }
  EXPECT_GT(results[0].downlink_goodput_bps,
            1.2 * results[1].downlink_goodput_bps);
  EXPECT_LT(results[0].mean_delay_s, results[1].mean_delay_s);
}

TEST(Simulator, CarpoolAggregatesMultipleReceivers) {
  SimConfig cfg = base_config(Scheme::kCarpool, 25, 5.0);
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 25; ++sta) {
    for (auto& flow :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(flow));
    }
  }
  const SimResult result = sim.run();
  EXPECT_GT(result.avg_aggregated_receivers, 1.2);
}

TEST(Simulator, DeadlineDropsLateFrames) {
  SimConfig cfg = base_config(Scheme::kDcf80211, 15, 5.0);
  cfg.delivery_deadline = 0.02;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 15; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 1400, 0.002));  // overload
  }
  const SimResult result = sim.run();
  EXPECT_GT(result.dl_frames_dropped, 100u);
  EXPECT_LE(result.max_delay_s, 0.25);  // queue never holds stale frames
}

TEST(Simulator, EnergyTimesAreSane) {
  SimConfig cfg = base_config(Scheme::kCarpool, 8, 4.0);
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 8; ++sta) {
    sim.add_flow(traffic::make_voip_flow(sta));
  }
  const SimResult result = sim.run();
  ASSERT_EQ(result.node_energy.size(), 9u);
  for (const NodeEnergy& ne : result.node_energy) {
    EXPECT_GE(ne.tx_seconds, 0.0);
    EXPECT_GE(ne.rx_seconds, 0.0);
    EXPECT_LE(ne.tx_seconds + ne.rx_seconds, cfg.duration + 1e-6);
    EXPECT_GT(ne.joules, 0.0);
  }
  // The AP transmits most of the time among all nodes.
  for (std::size_t sta = 1; sta < result.node_energy.size(); ++sta) {
    EXPECT_GE(result.node_energy[0].tx_seconds,
              result.node_energy[sta].tx_seconds);
  }
}

TEST(Simulator, WifoxPrioritizesApUnderUplinkLoad) {
  SimResult results[2];
  const Scheme schemes[2] = {Scheme::kWiFox, Scheme::kDcf80211};
  for (int s = 0; s < 2; ++s) {
    SimConfig cfg = base_config(schemes[s], 25, 6.0);
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 25; ++sta) {
      for (auto& flow :
           traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
        sim.add_flow(std::move(flow));
      }
      for (auto& flow : traffic::make_sigcomm_background(sta)) {
        sim.add_flow(std::move(flow));
      }
    }
    results[s] = sim.run();
  }
  EXPECT_GT(results[0].downlink_goodput_bps,
            results[1].downlink_goodput_bps);
}

TEST(Simulator, AirtimeAccountingSumsToDuration) {
  SimConfig cfg = base_config(Scheme::kAmpdu, 10, 4.0);
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 10; ++sta) {
    sim.add_flow(traffic::make_voip_flow(sta));
  }
  const SimResult result = sim.run();
  const double total = result.airtime_payload + result.airtime_overhead +
                       result.airtime_collision + result.airtime_idle;
  EXPECT_NEAR(total, cfg.duration, 0.05 * cfg.duration);
}

TEST(Simulator, RejectsBadFlows) {
  SimConfig cfg = base_config(Scheme::kCarpool, 4, 1.0);
  Simulator sim(cfg);
  FlowSpec bad;
  bad.src = 1;
  bad.dst = 2;  // STA-to-STA
  bad.next = [](double, Rng&) { return std::pair<double, std::size_t>{1, 1}; };
  EXPECT_THROW(sim.add_flow(bad), std::invalid_argument);
  FlowSpec null_gen;
  null_gen.dst = 1;
  EXPECT_THROW(sim.add_flow(null_gen), std::invalid_argument);
  FlowSpec out_of_range = traffic::make_voip_flow(99);
  EXPECT_THROW(sim.add_flow(out_of_range), std::invalid_argument);
}

TEST(Simulator, RtsCtsReducesCollisionCost) {
  SimResult with, without;
  for (const bool rts : {true, false}) {
    SimConfig cfg = base_config(Scheme::kDcf80211, 30, 4.0);
    cfg.use_rts_cts = rts;
    cfg.phy = std::make_shared<PerfectPhyModel>();
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 30; ++sta) {
      sim.add_flow(traffic::make_poisson_flow(
          sta, 0.02, traffic::TraceKind::kSigcomm, true));
    }
    (rts ? with : without) = sim.run();
  }
  ASSERT_GT(without.collisions, 0u);
  // Per-collision airtime cost is lower with RTS/CTS.
  const double cost_with =
      with.airtime_collision / static_cast<double>(with.collisions);
  const double cost_without =
      without.airtime_collision / static_cast<double>(without.collisions);
  EXPECT_LT(cost_with, cost_without);
}




// ----------------------------------------------------- mixed legacy STAs

TEST(Coexistence, LegacyStaServedWithSingleFrames) {
  ApQueues q;
  for (NodeId sta = 1; sta <= 4; ++sta) {
    q.enqueue(make_frame(sta, 200, 0.01 * sta));
  }
  const MacParams p;
  // STA 1 (oldest head) is legacy.
  std::vector<std::uint8_t> capable{1, 0, 1, 1, 1};
  const Transmission tx =
      q.build(Scheme::kCarpool, p, {}, 1.0, {}, {}, capable);
  // Oldest head is legacy -> a plain legacy transmission for it alone.
  ASSERT_EQ(tx.subunits.size(), 1u);
  EXPECT_EQ(tx.subunits[0].dst, 1u);
  EXPECT_FALSE(tx.sequential_ack);
  // Next TXOP aggregates the remaining (capable) stations.
  const Transmission tx2 =
      q.build(Scheme::kCarpool, p, {}, 1.0, {}, {}, capable);
  EXPECT_EQ(tx2.subunits.size(), 3u);
  EXPECT_TRUE(tx2.sequential_ack);
  for (const SubUnit& su : tx2.subunits) EXPECT_NE(su.dst, 1u);
}

TEST(Coexistence, MixedNetworkStillDelivers) {
  SimConfig cfg = base_config(Scheme::kCarpool, 20, 6.0);
  cfg.num_legacy_stas = 8;  // STAs 1..8 are legacy
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 20; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 300, 0.02));
  }
  const SimResult r = sim.run();
  // Everyone is served; capacity suffices at this load.
  EXPECT_NEAR(r.downlink_goodput_bps, 20 * 300 * 8 / 0.02, 1.5e5);
  EXPECT_EQ(r.dl_frames_dropped, 0u);
}

TEST(Coexistence, CarpoolStillAggregatesCapableSubset) {
  SimConfig cfg = base_config(Scheme::kCarpool, 30, 6.0);
  cfg.num_legacy_stas = 10;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 30; ++sta) {
    for (auto& f :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(f));
    }
  }
  const SimResult r = sim.run();
  EXPECT_GT(r.avg_aggregated_receivers, 1.0);
  EXPECT_GT(r.downlink_goodput_bps, 1e6);
}

// ----------------------------------------------------- hidden terminals

TEST(HiddenTerminals, DegradeUplinkWithoutRtsCts) {
  auto run = [](double hidden_fraction, bool rts) {
    SimConfig cfg = base_config(Scheme::kDcf80211, 16, 6.0);
    cfg.hidden_pair_fraction = hidden_fraction;
    cfg.use_rts_cts = rts;
    cfg.phy = std::make_shared<PerfectPhyModel>();
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 16; ++sta) {
      sim.add_flow(traffic::make_poisson_flow(
          sta, 0.01, traffic::TraceKind::kSigcomm, /*uplink=*/true));
    }
    return sim.run();
  };
  const SimResult clean = run(0.0, false);
  const SimResult hidden = run(0.5, false);
  const SimResult protected_run = run(0.5, true);

  // Hidden pairs cause extra collisions and waste airtime (at this load
  // retries still deliver every frame; the damage shows up as wasted air
  // and delay, not raw delivery count).
  EXPECT_GT(hidden.collisions, 2 * clean.collisions);
  EXPECT_GT(hidden.airtime_collision, 2 * clean.airtime_collision);
  EXPECT_GE(protected_run.ul_frames_delivered,
            hidden.ul_frames_delivered);
  // RTS/CTS shrinks the vulnerable window to an RTS.
  EXPECT_LT(protected_run.airtime_collision, hidden.airtime_collision);
}

TEST(HiddenTerminals, ZeroFractionMatchesBaseline) {
  auto run = [](double fraction) {
    SimConfig cfg = base_config(Scheme::kCarpool, 8, 3.0);
    cfg.hidden_pair_fraction = fraction;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 8; ++sta) {
      sim.add_flow(traffic::make_voip_flow(sta));
    }
    return sim.run();
  };
  const SimResult a = run(0.0);
  const SimResult b = run(0.0);
  EXPECT_EQ(a.dl_frames_delivered, b.dl_frames_delivered);
}

// ------------------------------------------------------ rate adaptation

TEST(RateAdaptation, ThresholdTableMonotone) {
  double prev = 0.0;
  for (double snr = 0.0; snr <= 40.0; snr += 1.0) {
    const double r = rate_for_snr(snr);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(rate_for_snr(0.0), 6.5e6);
  EXPECT_DOUBLE_EQ(rate_for_snr(30.0), 65e6);
  EXPECT_DOUBLE_EQ(rate_for_snr(15.0), 26e6);
}

TEST(RateAdaptation, RatesForSnrsIndexing) {
  const std::vector<double> snrs{5.0, 30.0};
  const auto rates = rates_for_snrs(snrs);
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[1], rate_for_snr(5.0));
  EXPECT_DOUBLE_EQ(rates[2], 65e6);
}

TEST(RateAdaptation, BuildUsesPerStaRates) {
  ApQueues q;
  q.enqueue(make_frame(1, 1000, 0.0));
  q.enqueue(make_frame(2, 1000, 0.0));
  const MacParams p;
  // STA 1 slow (6.5M), STA 2 fast (65M); slot 0 is the ignored AP slot.
  const LinkSnapshot links(
      {LinkDecision{}, LinkDecision{6.5e6, true}, LinkDecision{65e6, true}});
  const Transmission tx =
      q.build(Scheme::kCarpool, p, {}, 1.0, {}, links);
  ASSERT_EQ(tx.subunits.size(), 2u);
  const SubUnit* slow = nullptr;
  const SubUnit* fast = nullptr;
  for (const SubUnit& su : tx.subunits) {
    (su.dst == 1 ? slow : fast) = &su;
  }
  ASSERT_NE(slow, nullptr);
  ASSERT_NE(fast, nullptr);
  EXPECT_GT(slow->num_symbols, 5 * fast->num_symbols);
}

TEST(RateAdaptation, SimulatorRunsWithHeterogeneousLinks) {
  SimConfig cfg = base_config(Scheme::kCarpool, 8, 4.0);
  cfg.link_policy.rate_adaptation = true;
  cfg.sta_snr_db = {30, 30, 30, 30, 6, 6, 6, 6};  // half near, half far
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 8; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 500, 0.02));
  }
  const SimResult r = sim.run();
  EXPECT_GT(r.dl_frames_delivered, 100u);
  // Offered load small enough that even 6.5M links keep up.
  EXPECT_NEAR(r.downlink_goodput_bps, 8 * 500 * 8 / 0.02, 2e5);
}

// ---------------------------------------------- link-quality backoff

TEST(LinkQuality, DeadStaGetsSuspendedAndProbed) {
  // STA 1's link is unusable: with the gate on, the AP should repeatedly
  // suspend it from aggregation and probe it back after each timeout.
  SimConfig cfg = base_config(Scheme::kCarpool, 6, 5.0);
  cfg.sta_snr_db = {-10, 30, 30, 30, 30, 30};
  cfg.link_policy.suspension = true;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 6; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 500, 0.02));
  }
  const SimResult r = sim.run();
  EXPECT_GT(r.lq_suspensions, 2u);
  EXPECT_GT(r.lq_probes, 1u);
  // Healthy STAs keep their goodput despite the dead sibling.
  EXPECT_GT(r.per_sta_goodput_bps[2], 100e3);
}

TEST(LinkQuality, DisabledGateChangesNothing) {
  auto run = [](bool enabled) {
    SimConfig cfg = base_config(Scheme::kCarpool, 4, 3.0);
    cfg.link_policy.suspension = enabled;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 4; ++sta) {
      sim.add_flow(traffic::make_voip_flow(sta));
    }
    return sim.run();
  };
  const SimResult off = run(false);
  EXPECT_EQ(off.lq_suspensions, 0u);
  EXPECT_EQ(off.lq_probes, 0u);
  // Healthy 30 dB links never trip the gate, so enabling it is a no-op.
  const SimResult on = run(true);
  EXPECT_EQ(on.lq_suspensions, 0u);
  EXPECT_DOUBLE_EQ(on.downlink_goodput_bps, off.downlink_goodput_bps);
}

TEST(LinkQuality, SuspensionShieldsAggregatePeers) {
  // Aggregating a dead receiver wastes the whole aggregate's airtime on
  // retries; the gate should recover siblings' goodput.
  auto run = [](bool enabled) {
    SimConfig cfg = base_config(Scheme::kCarpool, 8, 5.0);
    cfg.sta_snr_db = {-10, -10, 30, 30, 30, 30, 30, 30};
    cfg.link_policy.suspension = enabled;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 8; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 800, 0.01));
    }
    return sim.run();
  };
  const SimResult gated = run(true);
  const SimResult ungated = run(false);
  EXPECT_GE(gated.downlink_goodput_bps, ungated.downlink_goodput_bps);
}

TEST(RateAdaptation, SlowLinksConsumeMoreAirtime) {
  auto run = [](double snr) {
    SimConfig cfg = base_config(Scheme::kDcf80211, 4, 4.0);
    cfg.link_policy.rate_adaptation = true;
    cfg.sta_snr_db = {snr, snr, snr, snr};
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 4; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 1000, 0.02));
    }
    return sim.run();
  };
  const SimResult fast = run(30.0);
  const SimResult slow = run(9.0);  // ~13 Mb/s links
  EXPECT_GT(slow.airtime_payload + slow.airtime_overhead,
            1.5 * (fast.airtime_payload + fast.airtime_overhead));
}

}  // namespace
}  // namespace carpool::mac
