#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fec/convolutional.hpp"
#include "fec/interleaver.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"

namespace carpool {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(2));
  return bits;
}

TEST(Scrambler, SelfInverse) {
  Rng rng(1);
  const Bits data = random_bits(256, rng);
  Scrambler tx(0x5D), rx(0x5D);
  EXPECT_EQ(rx.process(tx.process(data)), data);
}

TEST(Scrambler, KnownSequenceAllOnesSeed) {
  // With the all-ones seed the first 16 outputs are the start of the
  // 127-bit sequence in Clause 17.3.5.5: 0000 1110 1111 0010 ...
  Scrambler s(0x7F);
  const Bits expected{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0};
  for (const std::uint8_t e : expected) EXPECT_EQ(s.next_bit(), e);
}

TEST(Scrambler, Period127) {
  Scrambler s(0x7F);
  Bits first(127), second(127);
  for (auto& b : first) b = s.next_bit();
  for (auto& b : second) b = s.next_bit();
  EXPECT_EQ(first, second);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
}

TEST(Scrambler, ActuallyChangesData) {
  const Bits zeros(64, 0);
  Scrambler s(0x5D);
  const Bits out = s.process(zeros);
  EXPECT_NE(out, zeros);
}

TEST(Convolutional, KnownRateHalfOutputLength) {
  Rng rng(2);
  const Bits data = random_bits(100, rng);
  EXPECT_EQ(ConvolutionalCode::encode(data).size(), 200u);
}

TEST(Convolutional, AllZeroInputGivesAllZeroOutput) {
  const Bits zeros(24, 0);
  const Bits coded = ConvolutionalCode::encode(zeros);
  for (const auto b : coded) EXPECT_EQ(b, 0);
}

TEST(Convolutional, PunctureLengths) {
  Bits coded(48, 1);
  EXPECT_EQ(ConvolutionalCode::puncture(coded, CodeRate::kHalf).size(), 48u);
  EXPECT_EQ(ConvolutionalCode::puncture(coded, CodeRate::kTwoThirds).size(),
            36u);
  EXPECT_EQ(ConvolutionalCode::puncture(coded, CodeRate::kThreeQuarters).size(),
            32u);
}

TEST(Convolutional, DepunctureInsertsErasures) {
  // 4 coded bits at 2/3 come from 4 full positions, the 4th punctured.
  const SoftBits soft{1.0, -1.0, 1.0};
  const SoftBits full =
      ConvolutionalCode::depuncture(soft, CodeRate::kTwoThirds);
  ASSERT_EQ(full.size(), 4u);
  EXPECT_DOUBLE_EQ(full[3], 0.0);
}

TEST(Convolutional, RateValues) {
  EXPECT_DOUBLE_EQ(rate_value(CodeRate::kHalf), 0.5);
  EXPECT_NEAR(rate_value(CodeRate::kTwoThirds), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(rate_value(CodeRate::kThreeQuarters), 0.75);
  EXPECT_NEAR(rate_value(CodeRate::kFiveSixths), 5.0 / 6.0, 1e-12);
}

TEST(Convolutional, FiveSixthsPunctureLength) {
  Bits coded(60, 1);
  EXPECT_EQ(ConvolutionalCode::puncture(coded, CodeRate::kFiveSixths).size(),
            36u);
}

class ViterbiRoundTrip
    : public ::testing::TestWithParam<std::tuple<CodeRate, std::size_t>> {};

TEST_P(ViterbiRoundTrip, NoiselessDecodesExactly) {
  const auto [rate, size] = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) * 7 + 1);
  const Bits data = random_bits(size, rng);
  const Bits coded = ConvolutionalCode::encode_terminated(data, rate);
  const ViterbiDecoder decoder;
  const Bits decoded =
      decoder.decode_punctured(bits_to_soft(coded), rate, data.size());
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSizes, ViterbiRoundTrip,
    ::testing::Combine(::testing::Values(CodeRate::kHalf,
                                         CodeRate::kTwoThirds,
                                         CodeRate::kThreeQuarters,
                                         CodeRate::kFiveSixths),
                       ::testing::Values(30, 120, 240, 480)));

TEST(Viterbi, CorrectsBitErrorsAtRateHalf) {
  Rng rng(5);
  const Bits data = random_bits(200, rng);
  const Bits coded = ConvolutionalCode::encode_terminated(data, CodeRate::kHalf);
  SoftBits soft = bits_to_soft(coded);
  // Flip ~4% of coded bits, spread out (free distance 10 handles these).
  for (std::size_t i = 5; i < soft.size(); i += 25) soft[i] = -soft[i];
  const ViterbiDecoder decoder;
  const Bits decoded =
      decoder.decode_punctured(soft, CodeRate::kHalf, data.size());
  EXPECT_EQ(decoded, data);
}

TEST(Viterbi, SoftConfidenceBeatsHardDecisions) {
  // Attenuated (low-confidence) wrong bits should not break decoding.
  Rng rng(6);
  const Bits data = random_bits(300, rng);
  const Bits coded = ConvolutionalCode::encode_terminated(data, CodeRate::kHalf);
  SoftBits soft = bits_to_soft(coded);
  for (std::size_t i = 3; i < soft.size(); i += 11) {
    soft[i] = -0.05 * soft[i];  // weakly wrong
  }
  const ViterbiDecoder decoder;
  const Bits decoded =
      decoder.decode_punctured(soft, CodeRate::kHalf, data.size());
  EXPECT_EQ(decoded, data);
}

TEST(Viterbi, ErasuresTolerated) {
  Rng rng(7);
  const Bits data = random_bits(150, rng);
  const Bits coded = ConvolutionalCode::encode_terminated(data, CodeRate::kHalf);
  SoftBits soft = bits_to_soft(coded);
  for (std::size_t i = 0; i < soft.size(); i += 10) soft[i] = 0.0;
  const ViterbiDecoder decoder;
  const Bits decoded =
      decoder.decode_punctured(soft, CodeRate::kHalf, data.size());
  EXPECT_EQ(decoded, data);
}

TEST(Viterbi, OddSoftSizeThrows) {
  const ViterbiDecoder decoder;
  const SoftBits soft{1.0, -1.0, 1.0};
  EXPECT_THROW((void)decoder.decode(soft), std::invalid_argument);
}

TEST(Viterbi, UnterminatedDecodingWorks) {
  Rng rng(8);
  const Bits data = random_bits(100, rng);
  const Bits coded = ConvolutionalCode::encode(data);
  const ViterbiDecoder decoder;
  const Bits decoded = decoder.decode(bits_to_soft(coded),
                                      /*terminated=*/false);
  EXPECT_EQ(decoded, data);
}

class InterleaverParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(InterleaverParam, RoundTrip) {
  const auto [n_cbps, n_bpsc] = GetParam();
  Rng rng(n_cbps);
  const Interleaver il(n_cbps, n_bpsc);
  const Bits block = random_bits(n_cbps, rng);
  EXPECT_EQ(il.deinterleave(std::span<const std::uint8_t>(il.interleave(block))),
            block);
}

TEST_P(InterleaverParam, IsPermutation) {
  const auto [n_cbps, n_bpsc] = GetParam();
  const Interleaver il(n_cbps, n_bpsc);
  // Interleaving a one-hot block must produce a one-hot block.
  for (std::size_t pos = 0; pos < n_cbps; pos += 17) {
    Bits block(n_cbps, 0);
    block[pos] = 1;
    const Bits out = il.interleave(block);
    std::size_t ones = 0;
    for (const auto b : out) ones += b;
    EXPECT_EQ(ones, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMcs, InterleaverParam,
    ::testing::Values(std::pair<std::size_t, std::size_t>{48, 1},
                      std::pair<std::size_t, std::size_t>{96, 2},
                      std::pair<std::size_t, std::size_t>{192, 4},
                      std::pair<std::size_t, std::size_t>{288, 6}));

TEST(Interleaver, SpreadsAdjacentBits) {
  // Adjacent coded bits must map to non-adjacent positions (the point of
  // the first permutation).
  const Interleaver il(192, 4);
  Bits a(192, 0), b(192, 0);
  a[0] = 1;
  b[1] = 1;
  const Bits ia = il.interleave(a);
  const Bits ib = il.interleave(b);
  std::size_t pa = 0, pb = 0;
  for (std::size_t i = 0; i < 192; ++i) {
    if (ia[i]) pa = i;
    if (ib[i]) pb = i;
  }
  const std::size_t dist = pa > pb ? pa - pb : pb - pa;
  EXPECT_GE(dist, 8u);
}

TEST(Interleaver, InvalidConfigThrows) {
  EXPECT_THROW(Interleaver(47, 1), std::invalid_argument);
  EXPECT_THROW(Interleaver(0, 1), std::invalid_argument);
  EXPECT_THROW(Interleaver(48, 0), std::invalid_argument);
  EXPECT_THROW(Interleaver(48, 5), std::invalid_argument);
}

TEST(Interleaver, BlockSizeMismatchThrows) {
  const Interleaver il(48, 1);
  const Bits wrong(47, 0);
  EXPECT_THROW((void)il.interleave(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace carpool
