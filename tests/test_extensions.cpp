#include <gtest/gtest.h>

#include "carpool/compat.hpp"
#include "carpool/mumimo.hpp"
#include "carpool/rtscts.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "mac/aggregation.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

std::vector<SubframeSpec> make_subframes(std::size_t count, std::size_t bytes,
                                         std::size_t mcs_index, Rng& rng) {
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < count; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(bytes, rng)), mcs_index});
  }
  return subframes;
}

// ------------------------------------------------------------- RTS/CTS

TEST(RtsCts, RtsRoundTripCleanChannel) {
  Rng rng(1);
  const auto subframes = make_subframes(3, 200, 4, rng);
  const RtsInfo info{MacAddress::for_station(100), 1234};
  const CxVec wave = build_carpool_rts(subframes, info);

  for (std::size_t i = 0; i < subframes.size(); ++i) {
    const auto result =
        receive_carpool_rts(wave, subframes[i].receiver);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.info.transmitter, info.transmitter);
    EXPECT_EQ(result.info.duration_us, info.duration_us);
    ASSERT_FALSE(result.my_slots.empty());
    EXPECT_EQ(result.my_slots.front(), i);
  }
}

TEST(RtsCts, RtsCarriesSameBloomAsDataFrame) {
  // A station not named in the data frame should (almost always) find no
  // slot in the RTS either.
  Rng rng(2);
  const auto subframes = make_subframes(2, 100, 2, rng);
  const CxVec wave =
      build_carpool_rts(subframes, RtsInfo{MacAddress::for_station(9), 10});
  for (std::uint32_t candidate = 500; candidate < 520; ++candidate) {
    const auto result =
        receive_carpool_rts(wave, MacAddress::for_station(candidate));
    if (result.my_slots.empty()) return;  // expected common case found
  }
  FAIL() << "every outsider matched: Bloom filter broken";
}

TEST(RtsCts, RtsSurvivesFading) {
  Rng rng(3);
  const auto subframes = make_subframes(4, 300, 7, rng);
  const RtsInfo info{MacAddress::for_station(77), 9876};
  const CxVec wave = build_carpool_rts(subframes, info);
  FadingConfig cfg;
  cfg.seed = 4;
  cfg.snr_db = 25.0;
  FadingChannel channel(cfg);
  const auto result =
      receive_carpool_rts(channel.transmit(wave), subframes[1].receiver);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.info.duration_us, info.duration_us);
}

TEST(RtsCts, CtsRoundTrip) {
  const CxVec wave = build_cts(MacAddress::for_station(5), 4321);
  const CtsResult result = receive_cts(wave);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.receiver, MacAddress::for_station(5));
  EXPECT_EQ(result.nav_us, 4321u);
}

TEST(RtsCts, CtsRejectsGarbage) {
  Rng rng(5);
  CxVec noise(2000, Cx{});
  for (Cx& s : noise) s = Cx{rng.gaussian(), rng.gaussian()};
  EXPECT_FALSE(receive_cts(noise).valid);
}

TEST(RtsCts, EmptySubframesThrow) {
  std::vector<SubframeSpec> none;
  EXPECT_THROW((void)build_carpool_rts(none, RtsInfo{}),
               std::invalid_argument);
}

// --------------------------------------------------- frame classification

TEST(Compat, ClassifiesLegacyFrame) {
  Rng rng(11);
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(append_fcs(random_psdu(100, rng)), mcs(2));
  EXPECT_EQ(classify_waveform(wave), FrameKind::kLegacy);
}

TEST(Compat, ClassifiesCarpoolFrame) {
  Rng rng(12);
  const auto subframes = make_subframes(2, 150, 4, rng);
  const CarpoolTransmitter tx;
  EXPECT_EQ(classify_waveform(tx.build(subframes)), FrameKind::kCarpool);
}

TEST(Compat, ClassificationRobustToNoise) {
  Rng rng(13);
  const LegacyTransmitter ltx;
  const CarpoolTransmitter ctx;
  const CxVec legacy_wave =
      ltx.build(append_fcs(random_psdu(80, rng)), mcs(0));
  const auto subframes = make_subframes(3, 120, 2, rng);
  const CxVec carpool_wave = ctx.build(subframes);

  int correct = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FadingConfig cfg;
    cfg.seed = seed;
    cfg.snr_db = 22.0;
    FadingChannel ch_a(cfg);
    cfg.seed = seed + 50;
    FadingChannel ch_b(cfg);
    if (classify_waveform(ch_a.transmit(legacy_wave)) == FrameKind::kLegacy) {
      ++correct;
    }
    if (classify_waveform(ch_b.transmit(carpool_wave)) ==
        FrameKind::kCarpool) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 18);  // >=90% correct at 22 dB
}

TEST(Compat, UndecodableOnNoise) {
  Rng rng(14);
  CxVec noise(3000, Cx{});
  for (Cx& s : noise) s = 0.3 * Cx{rng.gaussian(), rng.gaussian()};
  EXPECT_EQ(classify_waveform(noise), FrameKind::kUndecodable);
  CxVec tiny(10, Cx{});
  EXPECT_EQ(classify_waveform(tiny), FrameKind::kUndecodable);
}

TEST(Compat, UniversalReceiverDispatches) {
  Rng rng(15);
  CarpoolRxConfig cfg;
  cfg.self = MacAddress::for_station(1);
  const UniversalReceiver rx(cfg);

  const LegacyTransmitter ltx;
  const Bytes psdu = append_fcs(random_psdu(60, rng));
  const auto legacy = rx.receive(ltx.build(psdu, mcs(2)));
  ASSERT_EQ(legacy.kind, FrameKind::kLegacy);
  ASSERT_TRUE(legacy.legacy.has_value());
  EXPECT_TRUE(legacy.legacy->fcs_ok);
  EXPECT_EQ(legacy.legacy->psdu, psdu);

  const auto subframes = make_subframes(2, 100, 4, rng);
  const CarpoolTransmitter ctx;
  const auto carpool = rx.receive(ctx.build(subframes));
  ASSERT_EQ(carpool.kind, FrameKind::kCarpool);
  ASSERT_TRUE(carpool.carpool.has_value());
  bool ok = false;
  for (const auto& sub : carpool.carpool->subframes) {
    if (sub.index == 0) ok = sub.fcs_ok;
  }
  EXPECT_TRUE(ok);
}

// ------------------------------------------------------------- MU-MIMO

TEST(MuMimo, IdealCsiDecodesCleanlyAtHighSnr) {
  MuMimoConfig cfg;
  cfg.snr_db = 35.0;
  cfg.seed = 3;
  const MuMimoResult r = simulate_mumimo(cfg);
  ASSERT_EQ(r.user_ber.size(), 4u);
  for (const double ber : r.user_ber) EXPECT_LT(ber, 1e-2);
}

TEST(MuMimo, BerDecreasesWithSnr) {
  MuMimoConfig lo, hi;
  lo.snr_db = 10.0;
  hi.snr_db = 30.0;
  lo.seed = hi.seed = 4;
  EXPECT_GT(simulate_mumimo(lo).mean_ber, simulate_mumimo(hi).mean_ber);
}

TEST(MuMimo, CsiErrorCausesInterference) {
  MuMimoConfig ideal, noisy;
  ideal.snr_db = noisy.snr_db = 30.0;
  ideal.seed = noisy.seed = 5;
  noisy.csi_error = 0.1;
  EXPECT_GT(simulate_mumimo(noisy).mean_ber,
            simulate_mumimo(ideal).mean_ber);
}

TEST(MuMimo, SharedPreambleSavesAirtime) {
  MuMimoConfig cfg;
  cfg.symbols_per_group = 20;
  const MuMimoResult r = simulate_mumimo(cfg);
  EXPECT_LT(r.carpool_symbols, r.legacy_symbols);
  EXPECT_GT(r.airtime_saving(), 0.10);
}

TEST(MuMimo, ValidatesConfig) {
  MuMimoConfig cfg;
  cfg.num_tx_antennas = 4;
  EXPECT_THROW((void)simulate_mumimo(cfg), std::invalid_argument);
  cfg = MuMimoConfig{};
  cfg.num_groups = 0;
  EXPECT_THROW((void)simulate_mumimo(cfg), std::invalid_argument);
}

// -------------------------------------------------------- time fairness

TEST(TimeFairness, LeastOccupancyServedFirst) {
  using namespace mac;
  ApQueues q;
  for (NodeId sta = 1; sta <= 10; ++sta) {
    q.enqueue(MacFrame{0, kApNode, sta, 200, 0.01 * sta, 0});
  }
  AggregationPolicy policy;
  policy.time_fairness = true;
  // STAs 1..8 have consumed lots of airtime; 9 and 10 none.
  std::vector<double> occupancy(11, 0.0);
  for (NodeId sta = 1; sta <= 8; ++sta) occupancy[sta] = 1.0;
  const MacParams params;
  const Transmission tx =
      q.build(Scheme::kCarpool, params, policy, 1.0, occupancy);
  ASSERT_GE(tx.subunits.size(), 2u);
  EXPECT_EQ(tx.subunits[0].dst, 9u);
  EXPECT_EQ(tx.subunits[1].dst, 10u);
}

TEST(TimeFairness, FallsBackToFifoWithoutTable) {
  using namespace mac;
  ApQueues q;
  q.enqueue(MacFrame{0, kApNode, 2, 200, 0.5, 0});
  q.enqueue(MacFrame{0, kApNode, 1, 200, 0.1, 0});
  AggregationPolicy policy;
  policy.time_fairness = true;  // but no occupancy table passed
  const MacParams params;
  const Transmission tx = q.build(Scheme::kCarpool, params, policy, 1.0);
  ASSERT_EQ(tx.subunits.size(), 2u);
  EXPECT_EQ(tx.subunits[0].dst, 1u);  // oldest first
}

TEST(TimeFairness, ReducesWorstCaseStarvationInSim) {
  using namespace mac;
  // One STA demands much more traffic; with FIFO its head frames are
  // always oldest, monopolising slots. Time fairness evens airtime.
  auto run = [](bool fair) {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 6;
    cfg.duration = 4.0;
    cfg.seed = 17;
    cfg.aggregation.time_fairness = fair;
    Simulator sim(cfg);
    sim.add_flow(traffic::make_cbr_flow(1, 1400, 0.001));  // hog
    for (NodeId sta = 2; sta <= 6; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 200, 0.01));
    }
    return sim.run();
  };
  const SimResult fifo = run(false);
  const SimResult fair = run(true);
  // Both deliver traffic; fairness must not collapse goodput.
  EXPECT_GT(fair.downlink_goodput_bps, 0.5 * fifo.downlink_goodput_bps);
}

// ------------------------------------------------------------ RTE alpha

TEST(RteAlpha, ZeroAlphaDisablesAdaptation) {
  Rng rng(21);
  const auto subframes = make_subframes(1, 3000, 7, rng);
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  FadingConfig cfg;
  cfg.seed = 9;
  cfg.snr_db = 33.0;
  cfg.rician_los = true;
  cfg.coherence_time = 4.5e-3;
  FadingChannel channel(cfg);
  const CxVec rx_wave = channel.transmit(wave);

  auto raw_errors = [&](double alpha, bool rte) {
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = subframes[0].receiver;
    rx_cfg.use_rte = rte;
    rx_cfg.rte_alpha = alpha;
    const CarpoolReceiver rx(rx_cfg);
    const auto result = rx.receive(rx_wave);
    const Mcs& m = mcs(7);
    const Bits ref = code_data_bits(build_data_bits(subframes[0].psdu, m), m);
    std::size_t errors = 0;
    for (const auto& sub : result.subframes) {
      for (std::size_t s = 0; s < sub.raw_symbol_bits.size(); ++s) {
        errors += hamming_distance(
            sub.raw_symbol_bits[s],
            std::span<const std::uint8_t>(ref.data() + s * m.n_cbps,
                                          m.n_cbps));
      }
    }
    return errors;
  };

  // alpha=0 must behave like RTE off.
  EXPECT_EQ(raw_errors(0.0, true), raw_errors(0.5, false));
  // paper's alpha=0.5 must beat no adaptation on this channel.
  EXPECT_LT(raw_errors(0.5, true), raw_errors(0.0, true));
}

}  // namespace
}  // namespace carpool
