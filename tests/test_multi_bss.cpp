// Multi-BSS topology layer (sim/topology.hpp, sim/multi_bss.hpp):
// geometry, frequency reuse, roaming association, and the two acceptance
// anchors of the multi-AP refactor —
//   1. a 2-BSS non-overlapping topology reproduces two independent
//      single-BSS mac::Simulator runs bit for bit, and
//   2. a >= 64-AP overlapping campaign is bit-identical (results and
//      metric fingerprint) at --threads 1 vs --threads 8.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "mac/simulator.hpp"
#include "obs/registry.hpp"
#include "sim/multi_bss.hpp"
#include "sim/topology.hpp"
#include "traffic/generators.hpp"

namespace carpool {
namespace {

using sim::AssociationTimeline;
using sim::MobilityPath;
using sim::MultiBssConfig;
using sim::MultiBssResult;
using sim::MultiBssSim;
using sim::Point;
using sim::TimedPoint;
using sim::Topology;
using sim::TopologySpec;

// ------------------------------------------------------------- topology

TEST(Topology, GridPlacementIsRowMajor) {
  TopologySpec spec;
  spec.ap_count = 4;
  spec.ap_spacing = 20.0;
  const Topology topo(spec);
  EXPECT_DOUBLE_EQ(topo.ap_position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(0).y, 0.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(1).x, 20.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(1).y, 0.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(2).x, 0.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(2).y, 20.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(3).x, 20.0);
  EXPECT_DOUBLE_EQ(topo.ap_position(3).y, 20.0);
  EXPECT_THROW((void)topo.ap_position(4), std::out_of_range);
}

TEST(Topology, ChannelReusePlanIsModulo) {
  TopologySpec spec;
  spec.ap_count = 7;
  spec.channel_count = 3;
  const Topology topo(spec);
  for (std::size_t ap = 0; ap < spec.ap_count; ++ap) {
    EXPECT_EQ(topo.channel_of(ap), ap % 3u);
  }
}

TEST(Topology, HomeApRoundRobinsStaIds) {
  TopologySpec spec;
  spec.ap_count = 3;
  const Topology topo(spec);
  EXPECT_EQ(topo.home_ap(1), 0u);
  EXPECT_EQ(topo.home_ap(2), 1u);
  EXPECT_EQ(topo.home_ap(3), 2u);
  EXPECT_EQ(topo.home_ap(4), 0u);
}

TEST(Topology, HomePositionsStayInsideTheCell) {
  TopologySpec spec;
  spec.ap_count = 4;
  spec.cell_size = 10.0;
  const Topology topo(spec);
  for (mac::NodeId sta = 1; sta <= 40; ++sta) {
    const Point ap = topo.ap_position(topo.home_ap(sta));
    const Point p = topo.home_position(sta);
    const double d = std::hypot(p.x - ap.x, p.y - ap.y);
    EXPECT_GE(d, 1.0) << "sta " << sta;
    EXPECT_LE(std::fabs(p.x - ap.x), 5.0) << "sta " << sta;
    EXPECT_LE(std::fabs(p.y - ap.y), 5.0) << "sta " << sta;
  }
}

TEST(Topology, LayoutIsAPureFunctionOfTheSeed) {
  TopologySpec spec;
  spec.ap_count = 2;
  const Topology a(spec, 0.1, 7);
  const Topology b(spec, 0.1, 7);
  const Topology c(spec, 0.1, 8);
  EXPECT_DOUBLE_EQ(a.home_position(1).x, b.home_position(1).x);
  EXPECT_DOUBLE_EQ(a.home_position(1).y, b.home_position(1).y);
  EXPECT_NE(a.home_position(1).x, c.home_position(1).x);
}

TEST(Topology, RejectsDegenerateSpecs) {
  TopologySpec spec;
  spec.ap_count = 0;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.channel_count = 0;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.ap_spacing = 0.0;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.roam_interval = -1.0;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.cell_size = 0.0;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.roam_hysteresis_db = -0.1;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
  spec = {};
  spec.activity_factor = 1.5;
  EXPECT_THROW(Topology{spec}, std::invalid_argument);
}

TEST(Topology, SinrEqualsSnrWithoutCochannelNeighbours) {
  // 2 APs on 2 channels: no co-channel pair, so SINR must take the exact
  // single-BSS SNR shortcut (the bit-for-bit 2-BSS anchor depends on it).
  TopologySpec spec;
  spec.ap_count = 2;
  spec.channel_count = 2;
  const Topology topo(spec);
  const Point p{3.0, 1.0};
  EXPECT_DOUBLE_EQ(topo.sinr_db(0, p),
                   topo.rx_power_dbm(0, p) - (-86.0));

  // Same geometry on one shared channel: the neighbour's power must cost
  // something.
  TopologySpec shared = spec;
  shared.channel_count = 1;
  const Topology cochannel(shared);
  EXPECT_LT(cochannel.sinr_db(0, p), topo.sinr_db(0, p));
}

TEST(Topology, AssociationHysteresisPreventsFlapping) {
  TopologySpec spec;
  spec.ap_count = 2;
  spec.ap_spacing = 20.0;
  spec.roam_hysteresis_db = 3.0;
  const Topology topo(spec);
  // Slightly past the midpoint toward AP 1: AP 1 is stronger, but not by
  // the hysteresis margin, so a STA currently on AP 0 stays.
  const Point just_past{10.5, 0.0};
  EXPECT_EQ(topo.associate(just_past, -1), 1u);
  EXPECT_EQ(topo.associate(just_past, 0), 0u);
  // Deep inside AP 1's cell the margin is met and the STA roams.
  const Point deep{19.0, 0.0};
  EXPECT_EQ(topo.associate(deep, 0), 1u);
}

// -------------------------------------------------- association timeline

TEST(AssociationTimeline, StaticStasNeverRoam) {
  TopologySpec spec;
  spec.ap_count = 4;
  const Topology topo(spec);
  const std::vector<MobilityPath> no_paths;
  const AssociationTimeline timeline(topo, 8, no_paths, 5.0);
  EXPECT_TRUE(timeline.handovers().empty());
  for (mac::NodeId sta = 1; sta <= 8; ++sta) {
    ASSERT_EQ(timeline.intervals()[sta].size(), 1u);
    EXPECT_DOUBLE_EQ(timeline.intervals()[sta].front().start, 0.0);
    EXPECT_DOUBLE_EQ(timeline.intervals()[sta].front().stop, 5.0);
    EXPECT_EQ(timeline.ap_at(sta, 0.0), timeline.ap_at(sta, 4.999));
  }
}

TEST(AssociationTimeline, WalkerHandsOverInTimeOrder) {
  TopologySpec spec;
  spec.ap_count = 2;
  spec.ap_spacing = 20.0;
  spec.roam_interval = 0.1;
  const Topology topo(spec);
  std::vector<MobilityPath> paths(3);
  paths[1] = MobilityPath({{0.0, {0.0, 1.0}}, {2.0, {20.0, 1.0}}});
  const AssociationTimeline timeline(topo, 2, paths, 2.0);
  ASSERT_FALSE(timeline.handovers().empty());
  EXPECT_EQ(timeline.ap_at(1, 0.0), 0u);
  EXPECT_EQ(timeline.ap_at(1, 2.0), 1u);
  double prev = 0.0;
  for (const sim::Handover& h : timeline.handovers()) {
    EXPECT_GE(h.time, prev);
    prev = h.time;
    EXPECT_EQ(h.sta, 1u);
    EXPECT_EQ(timeline.ap_at(h.sta, h.time), h.to_ap);
  }
  const std::vector<double> times = timeline.handover_times();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(std::adjacent_find(times.begin(), times.end()), times.end());
  // STA 2 is static and never roams.
  EXPECT_EQ(timeline.ap_at(2, 0.0), timeline.ap_at(2, 1.9));
}

TEST(AssociationTimeline, UnknownStaThrows) {
  TopologySpec spec;
  spec.ap_count = 2;
  const Topology topo(spec);
  const AssociationTimeline timeline(topo, 2, {}, 1.0);
  EXPECT_THROW((void)timeline.ap_at(0, 0.0), std::out_of_range);
  EXPECT_THROW((void)timeline.ap_at(3, 0.0), std::out_of_range);
}

// -------------------------------------------------------- 2-BSS anchor

void expect_results_identical(const mac::SimResult& a,
                              const mac::SimResult& b,
                              const std::string& label) {
  EXPECT_DOUBLE_EQ(a.duration, b.duration) << label;
  EXPECT_DOUBLE_EQ(a.downlink_goodput_bps, b.downlink_goodput_bps) << label;
  EXPECT_DOUBLE_EQ(a.uplink_goodput_bps, b.uplink_goodput_bps) << label;
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s) << label;
  EXPECT_DOUBLE_EQ(a.p95_delay_s, b.p95_delay_s) << label;
  EXPECT_EQ(a.dl_frames_delivered, b.dl_frames_delivered) << label;
  EXPECT_EQ(a.dl_frames_dropped, b.dl_frames_dropped) << label;
  EXPECT_EQ(a.tx_attempts, b.tx_attempts) << label;
  EXPECT_EQ(a.collisions, b.collisions) << label;
  EXPECT_EQ(a.subframe_failures, b.subframe_failures) << label;
}

TEST(MultiBssSim, TwoNonOverlappingBssesReproduceSingleBssRuns) {
  // 2 APs on 2 distinct channels: zero co-channel interference, so each
  // BSS must be bit-for-bit a standalone mac::Simulator run under the
  // same derived seed and SINR map — the refactor's regression anchor.
  MultiBssConfig cfg;
  cfg.topology.ap_count = 2;
  cfg.topology.channel_count = 2;
  cfg.num_stas = 6;  // STAs 1,3,5 -> AP 0; 2,4,6 -> AP 1
  cfg.duration = 0.4;
  cfg.seed = 99;
  MultiBssSim multi(cfg);
  const MultiBssResult res = multi.run();
  ASSERT_EQ(res.runs.size(), 2u);  // one epoch, two domains
  EXPECT_EQ(res.domains_simulated, 2u);
  EXPECT_TRUE(res.handovers.empty());

  for (std::size_t ap = 0; ap < 2; ++ap) {
    const sim::DomainRun& run = res.runs[ap];
    ASSERT_EQ(run.stas.size(), 3u);
    mac::Simulator single(
        multi.domain_config(0, ap, 0.0, cfg.duration, run.stas));
    for (std::size_t local = 1; local <= run.stas.size(); ++local) {
      single.add_flow(traffic::make_cbr_flow(
          static_cast<mac::NodeId>(local), cfg.frame_bytes,
          cfg.cbr_interval));
    }
    expect_results_identical(run.result, single.run(),
                             "ap=" + std::to_string(ap));
  }

  const double sum = res.per_ap_goodput_bps[0] + res.per_ap_goodput_bps[1];
  EXPECT_DOUBLE_EQ(res.aggregate_goodput_bps, sum);
  EXPECT_GT(res.aggregate_goodput_bps, 0.0);
}

// --------------------------------------------- epoch / handover slicing

TEST(MultiBssSim, EpochsPartitionTheCampaignAtHandovers) {
  MultiBssConfig cfg;
  cfg.topology.ap_count = 2;
  cfg.topology.roam_interval = 0.1;
  cfg.num_stas = 4;
  cfg.duration = 1.0;
  cfg.seed = 5;
  cfg.paths.resize(cfg.num_stas + 1);
  cfg.paths[1] = MobilityPath({{0.0, {0.0, 1.0}}, {1.0, {20.0, 1.0}}});
  MultiBssSim multi(cfg);
  const MultiBssResult res = multi.run();
  ASSERT_FALSE(res.handovers.empty());
  const std::size_t epochs = res.runs.size() / res.ap_count;
  ASSERT_GE(epochs, 2u);

  // Epoch slices tile [0, duration] with no gaps; within each epoch the
  // member sets of the domains partition the STA population — a handover
  // mid-TXOP lands the walker in exactly one domain on each side of the
  // cut, never both and never neither.
  double cursor = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const sim::DomainRun& first = res.runs[e * res.ap_count];
    EXPECT_DOUBLE_EQ(first.start, cursor);
    EXPECT_GT(first.stop, first.start);
    std::set<mac::NodeId> seen;
    std::size_t total = 0;
    for (std::size_t ap = 0; ap < res.ap_count; ++ap) {
      const sim::DomainRun& run = res.runs[e * res.ap_count + ap];
      EXPECT_DOUBLE_EQ(run.start, first.start);
      EXPECT_DOUBLE_EQ(run.stop, first.stop);
      seen.insert(run.stas.begin(), run.stas.end());
      total += run.stas.size();
    }
    EXPECT_EQ(seen.size(), cfg.num_stas);
    EXPECT_EQ(total, cfg.num_stas);
    cursor = first.stop;
  }
  EXPECT_DOUBLE_EQ(cursor, cfg.duration);

  // The walker's serving AP changes across the first handover boundary.
  const double cut = res.handovers.front().time;
  const auto domain_of = [&](double t) {
    for (std::size_t i = 0; i < res.runs.size(); ++i) {
      const sim::DomainRun& run = res.runs[i];
      if (t >= run.start && t < run.stop &&
          std::find(run.stas.begin(), run.stas.end(), 1u) !=
              run.stas.end()) {
        return run.ap;
      }
    }
    return res.ap_count;  // not found
  };
  EXPECT_EQ(domain_of(cut - 1e-3), res.handovers.front().from_ap);
  EXPECT_EQ(domain_of(cut + 1e-3), res.handovers.front().to_ap);
}

TEST(MultiBssSim, HandoverAtTheFinalInstantDoesNotCutAnEpoch) {
  // roam_interval == duration: the only association scan would land at
  // t == duration, which the timeline loop excludes — a single epoch.
  MultiBssConfig cfg;
  cfg.topology.ap_count = 2;
  cfg.topology.roam_interval = 0.3;
  cfg.num_stas = 2;
  cfg.duration = 0.3;
  cfg.paths.resize(cfg.num_stas + 1);
  cfg.paths[1] = MobilityPath({{0.0, {0.0, 1.0}}, {0.3, {20.0, 1.0}}});
  MultiBssSim multi(cfg);
  const MultiBssResult res = multi.run();
  EXPECT_TRUE(res.handovers.empty());
  EXPECT_EQ(res.runs.size(), res.ap_count);
}

TEST(MultiBssSim, ShortEpochSlicesRunCleanly) {
  // A handover 2 ms into the campaign makes the first epoch shorter than
  // a single TXOP: the mid-TXOP truncation path must not crash or
  // miscount (frames are judged inside whichever slice completes them).
  MultiBssConfig cfg;
  cfg.topology.ap_count = 2;
  cfg.topology.roam_interval = 0.002;
  cfg.topology.roam_hysteresis_db = 0.0;
  cfg.num_stas = 2;
  cfg.duration = 0.2;
  cfg.paths.resize(cfg.num_stas + 1);
  cfg.paths[1] = MobilityPath({{0.0, {9.9, 0.0}}, {0.004, {10.2, 0.0}},
                               {0.2, {20.0, 0.0}}});
  MultiBssSim multi(cfg);
  const MultiBssResult res = multi.run();
  ASSERT_FALSE(res.handovers.empty());
  EXPECT_LE(res.handovers.front().time, 0.01);
  EXPECT_GT(res.dl_frames_delivered, 0u);
  for (const sim::DomainRun& run : res.runs) {
    EXPECT_GE(run.result.duration, 0.0);
  }
}

TEST(MultiBssSim, RejectsDegenerateConfigs) {
  MultiBssConfig cfg;
  cfg.num_stas = 0;
  EXPECT_THROW(MultiBssSim{cfg}, std::invalid_argument);
  cfg = {};
  cfg.duration = 0.0;
  EXPECT_THROW(MultiBssSim{cfg}, std::invalid_argument);
}

// ------------------------------------------- 64-AP thread invariance

std::uint64_t campaign_fingerprint(MultiBssConfig cfg,
                                   MultiBssResult& out) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  MultiBssSim multi(std::move(cfg));
  out = multi.run();
  return scope.fingerprint();
}

TEST(MultiBssSim, SixtyFourApCampaignBitIdenticalAcrossThreadCounts) {
  // 64 APs on a 3-channel reuse plan: plenty of co-channel overlap, one
  // walker cutting epochs. Whole BSSes shard across carpool::par; the
  // index-ordered merge must make results and the metric fingerprint
  // identical at any thread count.
  MultiBssConfig cfg;
  cfg.topology.ap_count = 64;
  cfg.topology.channel_count = 3;
  cfg.topology.roam_interval = 0.05;
  cfg.num_stas = 64;
  cfg.duration = 0.1;
  cfg.seed = 2015;
  cfg.paths.resize(cfg.num_stas + 1);
  cfg.paths[1] = MobilityPath({{0.0, {1.0, 1.0}}, {0.1, {60.0, 60.0}}});

  cfg.threads = 1;
  MultiBssResult serial;
  const std::uint64_t serial_fp = campaign_fingerprint(cfg, serial);
  EXPECT_GT(serial.domains_simulated, 0u);

  for (const int threads : {2, 4, 8}) {
    cfg.threads = threads;
    MultiBssResult parallel;
    const std::uint64_t fp = campaign_fingerprint(cfg, parallel);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(fp, serial_fp) << label;
    EXPECT_DOUBLE_EQ(parallel.aggregate_goodput_bps,
                     serial.aggregate_goodput_bps)
        << label;
    EXPECT_EQ(parallel.dl_frames_delivered, serial.dl_frames_delivered)
        << label;
    EXPECT_EQ(parallel.collisions, serial.collisions) << label;
    ASSERT_EQ(parallel.runs.size(), serial.runs.size()) << label;
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
      expect_results_identical(parallel.runs[i].result,
                               serial.runs[i].result,
                               label + " run=" + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace carpool
