// PHY-level sequential ACK frames (Fig. 6) and the Jain fairness metric.

#include <gtest/gtest.h>

#include "carpool/ack.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

TEST(Ack, RoundTripClean) {
  const AckInfo info{MacAddress::for_station(42), 3, 1234};
  const AckRxResult r = receive_ack(build_ack(info));
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.info.receiver, info.receiver);
  EXPECT_EQ(r.info.subframe_index, 3);
  EXPECT_EQ(r.info.nav_us, 1234u);
}

TEST(Ack, RoundTripThroughFading) {
  const AckInfo info{MacAddress::for_station(7), 1, 65};
  FadingConfig cfg;
  cfg.seed = 3;
  cfg.snr_db = 20.0;
  FadingChannel channel(cfg);
  const AckRxResult r = receive_ack(channel.transmit(build_ack(info)));
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.info.receiver, info.receiver);
}

TEST(Ack, SequentialNavArithmetic) {
  const mac::MacParams p;
  // Last ACK carries NAV_1 = 0 (legacy-compatible).
  EXPECT_EQ(sequential_ack_nav_us(p, 4, 4), 0u);
  // Each earlier ACK reserves one more (ACK + SIFS) slot.
  const auto slot =
      static_cast<std::uint32_t>((p.ack_duration() + p.sifs) * 1e6 + 0.5);
  EXPECT_NEAR(sequential_ack_nav_us(p, 1, 4), 3 * slot, 2);
  EXPECT_NEAR(sequential_ack_nav_us(p, 3, 4), 1 * slot, 2);
  EXPECT_THROW((void)sequential_ack_nav_us(p, 0, 4), std::invalid_argument);
  EXPECT_THROW((void)sequential_ack_nav_us(p, 5, 4), std::invalid_argument);
}

TEST(Ack, FullExchangeOnWaveforms) {
  // The complete Fig. 2 / Fig. 6 flow: aggregate data frame, then each
  // receiver's ACK one SIFS apart, all over the same evolving channel.
  Rng rng(9);
  std::vector<SubframeSpec> subframes;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    subframes.push_back(SubframeSpec{MacAddress::for_station(i),
                                     append_fcs(random_psdu(150, rng)), 4});
  }
  const CarpoolTransmitter tx;
  const CxVec data_wave = tx.build(subframes);

  FadingConfig cfg;
  cfg.seed = 11;
  cfg.snr_db = 28.0;
  FadingChannel channel(cfg);
  const mac::MacParams params;

  // Data downlink.
  const CxVec rx_data = channel.transmit(data_wave);
  std::vector<std::size_t> decoded_ok;
  for (std::size_t i = 0; i < subframes.size(); ++i) {
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = subframes[i].receiver;
    const CarpoolReceiver rx(rx_cfg);
    for (const auto& sub : CarpoolReceiver(rx_cfg).receive(rx_data).subframes) {
      if (sub.index == i && sub.fcs_ok) decoded_ok.push_back(i);
    }
  }
  ASSERT_EQ(decoded_ok.size(), 3u);

  // Sequential ACKs back to the AP, SIFS-separated (channel evolves).
  const auto plan = plan_ack_sequence(subframes, params);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t j = 0; j < plan.size(); ++j) {
    channel.idle(params.sifs);
    const AckRxResult r =
        receive_ack(channel.transmit(build_ack(plan[j])));
    ASSERT_TRUE(r.valid) << "ACK " << j;
    EXPECT_EQ(r.info.receiver, subframes[j].receiver);
    EXPECT_EQ(r.info.subframe_index, j);
  }
  // NAV chain: strictly decreasing, ending at zero.
  EXPECT_GT(plan[0].nav_us, plan[1].nav_us);
  EXPECT_GT(plan[1].nav_us, plan[2].nav_us);
  EXPECT_EQ(plan[2].nav_us, 0u);
}

TEST(Ack, RejectsNoise) {
  Rng rng(12);
  CxVec noise(2000, Cx{});
  for (Cx& s : noise) s = Cx{rng.gaussian(), rng.gaussian()};
  EXPECT_FALSE(receive_ack(noise).valid);
}

// --------------------------------------------------------------- fairness

TEST(Fairness, PerfectlyFairUnderSymmetricLoad) {
  using namespace mac;
  SimConfig cfg;
  cfg.scheme = Scheme::kCarpool;
  cfg.num_stas = 10;
  cfg.duration = 5.0;
  cfg.seed = 21;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 10; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 400, 0.02));
  }
  const SimResult r = sim.run();
  EXPECT_GT(r.jain_fairness, 0.99);
  ASSERT_EQ(r.per_sta_goodput_bps.size(), 11u);
  EXPECT_DOUBLE_EQ(r.per_sta_goodput_bps[0], 0.0);  // AP receives nothing
  for (NodeId sta = 1; sta <= 10; ++sta) {
    EXPECT_NEAR(r.per_sta_goodput_bps[sta], 400 * 8 / 0.02, 2e4);
  }
}

TEST(Fairness, AsymmetricDemandLowersIndex) {
  using namespace mac;
  auto run = [](bool heavy_hog) {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 6;
    cfg.duration = 4.0;
    cfg.seed = 23;
    Simulator sim(cfg);
    sim.add_flow(
        traffic::make_cbr_flow(1, 1400, heavy_hog ? 0.001 : 0.01));
    for (NodeId sta = 2; sta <= 6; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 200, 0.01));
    }
    return sim.run();
  };
  const SimResult balanced = run(false);
  const SimResult hogged = run(true);
  EXPECT_LT(hogged.jain_fairness, balanced.jain_fairness);
  // Offered loads are 1.12 vs 0.16 Mb/s -> the index itself is ~0.44 even
  // when everyone gets their demand (fairness over *delivered* goodput).
  EXPECT_NEAR(balanced.jain_fairness, 0.444, 0.03);
}

TEST(Fairness, IndexBoundedByOne) {
  using namespace mac;
  SimConfig cfg;
  cfg.scheme = Scheme::kDcf80211;
  cfg.num_stas = 4;
  cfg.duration = 2.0;
  cfg.seed = 29;
  Simulator sim(cfg);
  sim.add_flow(traffic::make_cbr_flow(1, 300, 0.01));
  const SimResult r = sim.run();
  EXPECT_LE(r.jain_fairness, 1.0 + 1e-12);
  EXPECT_GT(r.jain_fairness, 0.0);
}

}  // namespace
}  // namespace carpool
