// carpool::impair — determinism, stage behaviour, and chain addressing.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "impair/impair.hpp"
#include "obs/registry.hpp"
#include "phy/constellation.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"

namespace carpool::impair {
namespace {

CxVec test_wave(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CxVec wave(n);
  for (Cx& s : wave) {
    s = Cx{rng.gaussian(0.0, 0.7), rng.gaussian(0.0, 0.7)};
  }
  return wave;
}

ImpairmentChain noisy_chain(std::uint64_t seed) {
  ImpairmentChain chain(seed);
  chain.add(make_gilbert_elliott({.p_good_to_bad = 0.2,
                                  .p_bad_to_good = 0.3,
                                  .bad_noise_power = 0.5}));
  chain.add(make_impulsive_noise({.impulse_prob = 5e-3}));
  return chain;
}

TEST(ImpairChain, SameSeedSameWaveforms) {
  const CxVec tx = test_wave(2000, 3);
  ImpairmentChain a = noisy_chain(99);
  ImpairmentChain b = noisy_chain(99);
  for (int frame = 0; frame < 5; ++frame) {
    const CxVec wa = a.run(tx);
    const CxVec wb = b.run(tx);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t n = 0; n < wa.size(); ++n) {
      ASSERT_EQ(wa[n], wb[n]) << "frame " << frame << " sample " << n;
    }
  }
}

TEST(ImpairChain, DifferentSeedsDiffer) {
  const CxVec tx = test_wave(2000, 3);
  ImpairmentChain a = noisy_chain(1);
  ImpairmentChain b = noisy_chain(2);
  const CxVec wa = a.run(tx);
  const CxVec wb = b.run(tx);
  bool any_diff = false;
  for (std::size_t n = 0; n < wa.size() && !any_diff; ++n) {
    any_diff = wa[n] != wb[n];
  }
  EXPECT_TRUE(any_diff);
}

TEST(ImpairChain, FramesDifferWithinOneChain) {
  const CxVec tx = test_wave(2000, 3);
  ImpairmentChain chain = noisy_chain(7);
  const CxVec f0 = chain.run(tx);
  const CxVec f1 = chain.run(tx);
  EXPECT_EQ(chain.frames_processed(), 2u);
  bool any_diff = false;
  for (std::size_t n = 0; n < f0.size() && !any_diff; ++n) {
    any_diff = f0[n] != f1[n];
  }
  EXPECT_TRUE(any_diff);
}

TEST(ImpairChain, ResetReplaysFirstFrame) {
  const CxVec tx = test_wave(1500, 5);
  ImpairmentChain chain = noisy_chain(13);
  const CxVec first = chain.run(tx);
  (void)chain.run(tx);
  chain.reset();
  EXPECT_EQ(chain.frames_processed(), 0u);
  const CxVec replay = chain.run(tx);
  ASSERT_EQ(first.size(), replay.size());
  for (std::size_t n = 0; n < first.size(); ++n) {
    ASSERT_EQ(first[n], replay[n]) << "sample " << n;
  }
}

TEST(ImpairChain, StageStreamsIndependentOfNeighbourConsumption) {
  // Stage RNG streams are addressed by (seed, frame, stage index): a
  // predecessor that consumes a different amount of randomness must not
  // change what a later stage does. Zero-power impulses fire the RNG
  // without altering the waveform, so both chains' outputs must match.
  const CxVec tx = test_wave(2000, 11);
  ImpairmentChain heavy(31);
  heavy.add(make_impulsive_noise({.impulse_prob = 0.9, .impulse_power = 0.0}));
  heavy.add(make_gilbert_elliott({.bad_noise_power = 0.8}));
  ImpairmentChain light(31);
  light.add(make_impulsive_noise({.impulse_prob = 0.0}));
  light.add(make_gilbert_elliott({.bad_noise_power = 0.8}));
  const CxVec wa = heavy.run(tx);
  const CxVec wb = light.run(tx);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t n = 0; n < wa.size(); ++n) {
    ASSERT_EQ(wa[n], wb[n]) << "sample " << n;
  }
}

// ------------------------------------------------------------- stages

TEST(ImpairStages, TruncationShortens) {
  const CxVec tx = test_wave(1000, 1);
  ImpairmentChain chain(1);
  chain.add(make_truncation({.keep_samples = 320}));
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), 320u);
  for (std::size_t n = 0; n < out.size(); ++n) EXPECT_EQ(out[n], tx[n]);
}

TEST(ImpairStages, ErasureZeroesExactRange) {
  const CxVec tx = test_wave(1000, 2);
  ImpairmentChain chain(1);
  chain.add(make_sample_erasure({.start_sample = 100, .num_samples = 50}));
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), tx.size());
  for (std::size_t n = 0; n < out.size(); ++n) {
    if (n >= 100 && n < 150) {
      EXPECT_EQ(out[n], Cx{}) << "sample " << n;
    } else {
      EXPECT_EQ(out[n], tx[n]) << "sample " << n;
    }
  }
}

TEST(ImpairStages, ErasurePastEndIsClipped) {
  const CxVec tx = test_wave(120, 2);
  ImpairmentChain chain(1);
  chain.add(make_sample_erasure({.start_sample = 100, .num_samples = 500}));
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), 120u);
  EXPECT_EQ(out[119], Cx{});
  EXPECT_EQ(out[99], tx[99]);
}

TEST(ImpairStages, SnrCollapseAttenuatesTail) {
  const CxVec tx = test_wave(400, 3);
  ImpairmentChain chain(1);
  chain.add(make_snr_collapse({.start_sample = 200, .attenuation_db = 20.0}));
  const CxVec out = chain.run(tx);
  EXPECT_EQ(out[100], tx[100]);
  EXPECT_NEAR(std::abs(out[300]), 0.1 * std::abs(tx[300]), 1e-12);
}

TEST(ImpairStages, ClockDriftPreservesApproximateLength) {
  const CxVec tx = test_wave(10000, 4);
  ImpairmentChain chain(1);
  chain.add(make_clock_drift({.ppm = 100.0}));
  const CxVec out = chain.run(tx);
  // A 100 ppm fast clock loses about n * ppm * 1e-6 samples (plus the
  // final interpolation sample).
  EXPECT_LE(out.size(), tx.size());
  EXPECT_GE(out.size(), tx.size() - 4);
}

TEST(ImpairStages, ZeroDriftIsIdentity) {
  const CxVec tx = test_wave(500, 5);
  ImpairmentChain chain(1);
  chain.add(make_clock_drift({.ppm = 0.0}));
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), tx.size());
  for (std::size_t n = 0; n < out.size(); ++n) EXPECT_EQ(out[n], tx[n]);
}

TEST(ImpairStages, HeaderCorruptionFlipsOnlyTargetBins) {
  // Build a "frame": preamble + 4 OFDM symbols of known BPSK points.
  Rng rng(6);
  const Constellation& bpsk = constellation(Modulation::kBpsk);
  CxVec wave = preamble_waveform();
  std::vector<CxVec> tx_points;
  for (std::size_t s = 0; s < 4; ++s) {
    CxVec points(kNumDataSubcarriers);
    for (Cx& p : points) p = bpsk.points()[rng.uniform_int(bpsk.size())];
    tx_points.push_back(points);
    const CxVec sym = assemble_symbol(points, s);
    wave.insert(wave.end(), sym.begin(), sym.end());
  }

  constexpr std::size_t kTarget = 2;
  constexpr std::size_t kFlips = 12;
  ImpairmentChain chain(17);
  chain.add(make_header_corruption(
      {.symbol_index = kTarget, .flip_bins = kFlips}));
  const CxVec out = chain.run(wave);
  ASSERT_EQ(out.size(), wave.size());

  // Samples outside the target symbol are untouched.
  const std::size_t start = kPreambleLen + kTarget * kSymbolLen;
  for (std::size_t n = 0; n < out.size(); ++n) {
    if (n < start || n >= start + kSymbolLen) {
      ASSERT_EQ(out[n], wave[n]) << "sample " << n;
    }
  }

  // Exactly kFlips data bins are negated in the target symbol.
  for (std::size_t s = 0; s < 4; ++s) {
    const CxVec bins = extract_symbol(std::span<const Cx>(out).subspan(
        kPreambleLen + s * kSymbolLen, kSymbolLen));
    const CxVec ref_bins = extract_symbol(std::span<const Cx>(wave).subspan(
        kPreambleLen + s * kSymbolLen, kSymbolLen));
    std::size_t flipped = 0;
    for (const std::size_t bin : data_bins()) {
      if (std::abs(bins[bin] + ref_bins[bin]) < 1e-9) {
        ++flipped;  // negated
      } else {
        EXPECT_NEAR(std::abs(bins[bin] - ref_bins[bin]), 0.0, 1e-9);
      }
    }
    EXPECT_EQ(flipped, s == kTarget ? kFlips : 0u) << "symbol " << s;
  }
}

TEST(ImpairStages, HeaderCorruptionBeyondFrameIsNoop) {
  const CxVec tx = test_wave(kPreambleLen + kSymbolLen, 7);
  ImpairmentChain chain(1);
  chain.add(make_header_corruption({.symbol_index = 5, .flip_bins = 10}));
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), tx.size());
  for (std::size_t n = 0; n < out.size(); ++n) EXPECT_EQ(out[n], tx[n]);
}

// --------------------------------------------------------- edge cases

TEST(ImpairEdge, EmptyChainIsIdentity) {
  const CxVec tx = test_wave(300, 9);
  ImpairmentChain chain(5);
  ASSERT_EQ(chain.size(), 0u);
  const CxVec out = chain.run(tx);
  ASSERT_EQ(out.size(), tx.size());
  for (std::size_t n = 0; n < out.size(); ++n) EXPECT_EQ(out[n], tx[n]);
  EXPECT_EQ(chain.frames_processed(), 1u);
}

TEST(ImpairEdge, EmptyChainEmptyWaveform) {
  ImpairmentChain chain(5);
  const CxVec out = chain.run(CxVec{});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(chain.frames_processed(), 1u);
}

TEST(ImpairEdge, ZeroLengthWaveformThroughEveryStage) {
  // A zero-length capture must pass through every stage factory without
  // crashing and come out still zero-length (no stage invents samples).
  ImpairmentChain chain(23);
  chain.add(make_gilbert_elliott({}));
  chain.add(make_snr_collapse({}));
  chain.add(make_truncation({.keep_samples = 100}));
  chain.add(make_sample_erasure({}));
  chain.add(make_impulsive_noise({.impulse_prob = 0.5}));
  chain.add(make_clock_drift({.ppm = 200.0}));
  chain.add(make_header_corruption({}));
  chain.add(make_trace_gated(EpisodeTrace{{{0, 10}}},
                             make_gilbert_elliott({})));
  for (int frame = 0; frame < 3; ++frame) {
    const CxVec out = chain.run(CxVec{});
    EXPECT_TRUE(out.empty()) << "frame " << frame;
  }
}

TEST(ImpairEdge, TruncationToZeroThenMoreStages) {
  // Truncation may shorten the waveform to nothing mid-chain; downstream
  // stages must cope with the now-empty vector.
  const CxVec tx = test_wave(500, 10);
  ImpairmentChain chain(3);
  chain.add(make_truncation({.keep_samples = 0}));
  chain.add(make_gilbert_elliott({.p_good_to_bad = 1.0}));
  chain.add(make_clock_drift({.ppm = 50.0}));
  chain.add(make_header_corruption({}));
  const CxVec out = chain.run(tx);
  EXPECT_TRUE(out.empty());
}

TEST(ImpairEdge, TraceGatedInactiveFramesPassThrough) {
  const CxVec tx = test_wave(800, 12);
  ImpairmentChain chain(41);
  chain.add(make_trace_gated(EpisodeTrace{{{2, 3}}},
                             make_gilbert_elliott({.p_good_to_bad = 1.0,
                                                   .bad_noise_power = 1.0})));
  for (std::uint64_t frame = 0; frame < 5; ++frame) {
    const bool active = frame >= 2 && frame <= 3;
    const CxVec out = chain.run(tx);
    bool any_diff = false;
    for (std::size_t n = 0; n < out.size() && !any_diff; ++n) {
      any_diff = out[n] != tx[n];
    }
    EXPECT_EQ(any_diff, active) << "frame " << frame;
  }
}

TEST(ImpairEdge, TraceGatedActiveFrameMatchesUngatedInner) {
  // The wrapper hands its own (seed, frame, stage) stream to the inner
  // stage, so an always-active gate is bit-identical to the bare stage.
  const CxVec tx = test_wave(800, 13);
  const GilbertElliottConfig ge{.p_good_to_bad = 0.8,
                                .bad_noise_power = 0.7};
  ImpairmentChain gated(77);
  gated.add(make_trace_gated(EpisodeTrace{{{0, 100}}},
                             make_gilbert_elliott(ge)));
  ImpairmentChain bare(77);
  bare.add(make_gilbert_elliott(ge));
  for (int frame = 0; frame < 4; ++frame) {
    const CxVec wa = gated.run(tx);
    const CxVec wb = bare.run(tx);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t n = 0; n < wa.size(); ++n) {
      ASSERT_EQ(wa[n], wb[n]) << "frame " << frame << " sample " << n;
    }
  }
}

TEST(ImpairEdge, TraceGatedNullInnerThrows) {
  EXPECT_THROW(make_trace_gated(EpisodeTrace{}, nullptr),
               std::invalid_argument);
}

TEST(ImpairEdge, EpisodeTraceInclusiveBounds) {
  const EpisodeTrace trace{{{5, 7}, {10, 10}}};
  EXPECT_FALSE(trace.active(4));
  EXPECT_TRUE(trace.active(5));
  EXPECT_TRUE(trace.active(7));
  EXPECT_FALSE(trace.active(8));
  EXPECT_TRUE(trace.active(10));
  EXPECT_FALSE(trace.active(11));
  EXPECT_FALSE(EpisodeTrace{}.active(0));
}

// ------------------------------------------------- recorded SNR offsets

TEST(SnrOffsetTraceStage, AppliesRecordedGainPerFrame) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent scope(reg);
  const CxVec tx = test_wave(256, 7);
  ImpairmentChain chain(1);
  chain.add(make_snr_offset_trace({.offset_db = {6.0, 0.0, -6.0}}));

  const CxVec f0 = chain.run(tx);  // +6 dB
  const CxVec f1 = chain.run(tx);  // 0 dB: identity, not even counted
  const CxVec f2 = chain.run(tx);  // -6 dB
  const CxVec f3 = chain.run(tx);  // past the trace: untouched

  const double up = std::pow(10.0, 6.0 / 20.0);
  const double down = std::pow(10.0, -6.0 / 20.0);
  for (std::size_t n = 0; n < tx.size(); ++n) {
    ASSERT_NEAR(std::abs(f0[n]), up * std::abs(tx[n]), 1e-12);
    ASSERT_EQ(f1[n], tx[n]);
    ASSERT_NEAR(std::abs(f2[n]), down * std::abs(tx[n]), 1e-12);
    ASSERT_EQ(f3[n], tx[n]);
  }
  // Only the two frames that actually changed amplitude are counted.
  EXPECT_EQ(reg.counter_value("impair.snr_offset_frames"), 2u);
}

TEST(SnrOffsetTraceStage, EmptyTraceIsIdentity) {
  const CxVec tx = test_wave(64, 11);
  ImpairmentChain chain(1);
  chain.add(make_snr_offset_trace({}));
  for (int frame = 0; frame < 3; ++frame) {
    const CxVec out = chain.run(tx);
    for (std::size_t n = 0; n < tx.size(); ++n) ASSERT_EQ(out[n], tx[n]);
  }
}

TEST(SnrOffsetTraceStage, ComposesDeterministicallyWithNoiseStages) {
  // The offset stage draws no randomness, so inserting it must not
  // perturb what a downstream stochastic stage produces frame to frame.
  const CxVec tx = test_wave(1024, 3);
  ImpairmentChain plain(42);
  plain.add(make_gilbert_elliott({.p_good_to_bad = 0.2,
                                  .p_bad_to_good = 0.3,
                                  .bad_noise_power = 0.5}));
  ImpairmentChain with_offset(42);
  with_offset.add(make_gilbert_elliott({.p_good_to_bad = 0.2,
                                        .p_bad_to_good = 0.3,
                                        .bad_noise_power = 0.5}));
  // Streams are (frame, stage-index)-addressed, so the no-op offset
  // stage rides at index 1 and the noise stage keeps its stream.
  with_offset.add(make_snr_offset_trace({.offset_db = {0.0, 0.0}}));
  for (int frame = 0; frame < 4; ++frame) {
    const CxVec a = plain.run(tx);
    const CxVec b = with_offset.run(tx);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t n = 0; n < a.size(); ++n) {
      ASSERT_EQ(a[n], b[n]) << "frame " << frame << " sample " << n;
    }
  }
}

}  // namespace
}  // namespace carpool::impair
