// Frame-lifecycle span model (obs::Span / obs::SpanCollector,
// docs/OBSERVABILITY.md): tree assembly, id-remapped merges, the
// determinism contract under carpool::par sharding, and the JSONL /
// Chrome trace-event exporters. Suite names contain "Span" so the CI
// tsan lane's test filter picks them up.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"

namespace carpool {
namespace {

/// Minimal structural JSON check (mirrors test_obs.cpp): balanced
/// braces/brackets outside strings, terminated strings.
bool json_balanced(std::string_view text) {
  if (text.empty()) return false;
  long braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

obs::SpanRecord sim_record(std::uint64_t parent, std::string name,
                           double start, double duration) {
  obs::SpanRecord r;
  r.parent = parent;
  r.name = std::move(name);
  r.sim_start = start;
  r.sim_duration = duration;
  return r;
}

/// Strip wall-clock fields so records can be compared across runs.
obs::SpanRecord deterministic_part(obs::SpanRecord r) {
  r.wall_start_ns = 0;
  r.wall_ns = 0;
  return r;
}

bool same_modulo_wall(const obs::SpanRecord& a, const obs::SpanRecord& b) {
  const obs::SpanRecord x = deterministic_part(a);
  const obs::SpanRecord y = deterministic_part(b);
  return x.id == y.id && x.parent == y.parent && x.name == y.name &&
         x.ids.txop == y.ids.txop && x.ids.frame == y.ids.frame &&
         x.ids.subframe == y.ids.subframe && x.ids.sta == y.ids.sta &&
         x.sim_start == y.sim_start && x.sim_duration == y.sim_duration &&
         x.outcome == y.outcome;
}

TEST(SpanCollector, EmitAssignsContiguousIdsFromOne) {
  obs::SpanCollector collector;
  const std::uint64_t a = collector.emit(sim_record(0, "a", 0.0, 1.0));
  const std::uint64_t b = collector.emit(sim_record(a, "b", 0.1, 0.5));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  ASSERT_EQ(collector.records().size(), 2u);
  EXPECT_EQ(collector.records()[1].parent, a);
}

TEST(SpanCollector, CapDropsRecordsAndCounts) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent metric_scope(reg);
  obs::SpanCollector collector(/*max_records=*/2);
  EXPECT_NE(collector.emit(sim_record(0, "a", 0.0, 1.0)), 0u);
  EXPECT_NE(collector.emit(sim_record(0, "b", 1.0, 1.0)), 0u);
  EXPECT_EQ(collector.emit(sim_record(0, "c", 2.0, 1.0)), 0u);
  EXPECT_EQ(collector.records().size(), 2u);
  EXPECT_EQ(collector.dropped(), 1u);
  EXPECT_EQ(reg.counter_value("obs.spans_dropped"), 1u);
}

TEST(SpanRaii, NestingBuildsParentLinks) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "CARPOOL_ENABLE_TRACE=OFF: Span call sites are inert";
  }
  obs::SpanCollector collector;
  {
    const obs::SpanCollector::ScopedCurrent scope(collector);
    obs::Span outer("outer");
    outer.ids({.txop = 7}).sim_interval(1.0, 2.0);
    {
      obs::Span inner("inner");
      inner.outcome("ok");
      EXPECT_EQ(collector.open_span(), inner.id());
    }
    // Non-RAII emit parents itself to the innermost open span.
    obs::SpanRecord leaf;
    leaf.name = "leaf";
    leaf.sim_start = 1.5;
    collector.emit(std::move(leaf));
  }
  // Children complete (and append) before their parent: leaf-first order.
  ASSERT_EQ(collector.records().size(), 3u);
  const auto& records = collector.records();
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[1].name, "leaf");
  EXPECT_EQ(records[2].name, "outer");
  EXPECT_EQ(records[0].parent, records[2].id);
  EXPECT_EQ(records[1].parent, records[2].id);
  EXPECT_EQ(records[2].parent, 0u);
  EXPECT_EQ(records[2].ids.txop, 7);
  // Sim-timeline span: wall fields zeroed; wall leaf keeps its clock.
  EXPECT_TRUE(records[2].on_sim_timeline());
  EXPECT_EQ(records[2].wall_ns, 0u);
  EXPECT_FALSE(records[0].on_sim_timeline());
}

TEST(SpanRaii, InertWithoutCollector) {
  obs::Span span("nobody.listening");
  span.ids({.sta = 3}).outcome("ok");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
}

TEST(SpanMerge, RemapsIdsPastWatermark) {
  obs::SpanCollector a;
  const std::uint64_t a1 = a.emit(sim_record(0, "a1", 0.0, 1.0));
  a.emit(sim_record(a1, "a2", 0.0, 0.5));

  obs::SpanCollector b;
  const std::uint64_t b1 = b.emit(sim_record(0, "b1", 2.0, 1.0));
  b.emit(sim_record(b1, "b2", 2.0, 0.5));

  a.merge_from(b);
  ASSERT_EQ(a.records().size(), 4u);
  // b's ids 1,2 land as 3,4; parent links move with them.
  EXPECT_EQ(a.records()[2].id, 3u);
  EXPECT_EQ(a.records()[3].id, 4u);
  EXPECT_EQ(a.records()[3].parent, 3u);
  // Roots stay roots.
  EXPECT_EQ(a.records()[2].parent, 0u);
  // A second merge continues past the new watermark.
  obs::SpanCollector c;
  c.emit(sim_record(0, "c1", 4.0, 1.0));
  a.merge_from(c);
  EXPECT_EQ(a.records().back().id, 5u);
}

TEST(SpanMerge, FingerprintIgnoresWallClock) {
  obs::SpanCollector a;
  obs::SpanCollector b;
  for (obs::SpanCollector* c : {&a, &b}) {
    obs::SpanRecord r;
    r.name = "decode";
    r.outcome = "ok";
    r.wall_start_ns = (c == &a) ? 100u : 999999u;  // differs
    r.wall_ns = (c == &a) ? 10u : 777u;            // differs
    c->emit(std::move(r));
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  obs::SpanCollector c;
  obs::SpanRecord r;
  r.name = "decode";
  r.outcome = "failed";  // deterministic surface differs
  c.emit(std::move(r));
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(SpanJsonl, OneBalancedObjectPerLine) {
  obs::SpanCollector collector;
  const std::uint64_t root = collector.emit(sim_record(0, "root", 0.0, 2.0));
  obs::SpanRecord leaf;
  leaf.parent = root;
  leaf.name = "quote\"in\\name";
  leaf.ids.sta = 4;
  leaf.wall_start_ns = 10;
  leaf.wall_ns = 25;
  leaf.outcome = "ok";
  collector.emit(std::move(leaf));

  obs::TraceSink sink;
  collector.write_jsonl(sink);
  const auto lines = split_lines(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_NE(line.find("\"type\":\"span\""), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"sim_start\""), std::string::npos);
  EXPECT_EQ(lines[0].find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"wall_ns\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"sim_start\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"sta\":4"), std::string::npos);
}

TEST(SpanChromeTrace, WriterEmitsBalancedTraceEvents) {
  obs::SpanCollector collector;
  const std::uint64_t txop = collector.emit(sim_record(0, "mac.txop", 1.0, 0.5));
  collector.emit(sim_record(txop, "mac.frame", 1.1, 0.3));
  obs::SpanRecord wall_leaf;
  wall_leaf.parent = txop;
  wall_leaf.name = "fec.viterbi_decode";
  wall_leaf.wall_start_ns = 1000;
  wall_leaf.wall_ns = 500;
  collector.emit(std::move(wall_leaf));

  const std::string json = obs::ChromeTraceWriter::to_json(collector.records());
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"mac.txop\""), std::string::npos);
  // Sim seconds -> trace microseconds.
  EXPECT_NE(json.find("\"ts\":1000000.0"), std::string::npos);
  // Both tracks get a thread_name metadata event; the wall leaf hangs
  // off a sim parent, which also emits a flow-event pair.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

/// One sharded job: a txop span wrapping per-item child spans plus a
/// direct emit, all deterministic functions of the job index.
int span_job(const par::ShardInfo& info) {
  obs::Span txop("job.txop");
  txop.ids({.txop = static_cast<std::int64_t>(info.index)})
      .sim_interval(static_cast<double>(info.index), 1.0)
      .outcome(info.index % 3 == 0 ? "ok" : "failed");
  for (int k = 0; k < 3; ++k) {
    obs::Span child("job.subframe");
    child.ids({.subframe = k});
  }
  obs::SpanRecord leaf;
  leaf.name = "job.leaf";
  leaf.sim_start = static_cast<double>(info.index) + 0.5;
  obs::SpanCollector::current()->emit(std::move(leaf));
  return static_cast<int>(info.index);
}

void run_span_sweep(std::size_t threads, obs::SpanCollector& collector) {
  obs::Registry reg;
  const obs::Registry::ScopedCurrent metric_scope(reg);
  const obs::SpanCollector::ScopedCurrent span_scope(collector);
  const auto results = par::run_sharded(16, threads, span_job);
  EXPECT_EQ(results.size(), 16u);
}

TEST(SpanSharding, SerialAndParallelStreamsAreIdentical) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "CARPOOL_ENABLE_TRACE=OFF: Span call sites are inert";
  }
  obs::SpanCollector serial;
  obs::SpanCollector parallel;
  run_span_sweep(1, serial);
  run_span_sweep(4, parallel);
  ASSERT_EQ(serial.records().size(), parallel.records().size());
  ASSERT_EQ(serial.records().size(), 16u * 5u);  // txop + 3 children + leaf
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  for (std::size_t i = 0; i < serial.records().size(); ++i) {
    EXPECT_TRUE(same_modulo_wall(serial.records()[i], parallel.records()[i]))
        << "record " << i << ": " << serial.records()[i].name << " vs "
        << parallel.records()[i].name;
  }
}

TEST(SpanSharding, ParallelJsonlIsIntactAndTreeConsistent) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "CARPOOL_ENABLE_TRACE=OFF: Span call sites are inert";
  }
  obs::SpanCollector collector;
  run_span_sweep(4, collector);
  obs::TraceSink sink;
  collector.write_jsonl(sink);
  const auto lines = split_lines(sink.str());
  ASSERT_EQ(lines.size(), collector.records().size());
  for (const auto& line : lines) {
    ASSERT_TRUE(json_balanced(line)) << line;
    ASSERT_EQ(line.front(), '{');
    ASSERT_EQ(line.back(), '}');
  }
  // The merged stream reassembles into a consistent forest: unique ids,
  // every parent resolves, and every child's parent is a job.txop root.
  std::set<std::uint64_t> ids;
  std::map<std::uint64_t, std::string> name_of;
  for (const auto& r : collector.records()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
    name_of[r.id] = r.name;
  }
  std::size_t roots = 0;
  for (const auto& r : collector.records()) {
    if (r.parent == 0) {
      ++roots;
      EXPECT_EQ(r.name, "job.txop");
    } else {
      ASSERT_TRUE(ids.count(r.parent)) << "dangling parent " << r.parent;
      EXPECT_EQ(name_of[r.parent], "job.txop");
    }
  }
  EXPECT_EQ(roots, 16u);
}

}  // namespace
}  // namespace carpool
