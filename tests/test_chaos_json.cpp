// chaos/json error-path coverage: the parser's contract is that it
// NEVER throws and never crashes — every malformed input becomes a
// structured JsonError with a 1-based line/column. These tests pin that
// contract on the inputs most likely to slip through a hand-rolled
// parser: malformed numbers, truncated documents, duplicate keys, and
// pathological nesting depth.

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "chaos/json.hpp"
#include "chaos/scenario.hpp"

namespace carpool::chaos {
namespace {

JsonParseResult parse_nothrow(const std::string& text) {
  JsonParseResult out;
  EXPECT_NO_THROW(out = json_parse(text)) << "input: " << text;
  return out;
}

// ------------------------------------------------------ malformed numbers

TEST(ChaosJsonNumbers, BareMinusSignIsAnError) {
  const JsonParseResult r = parse_nothrow("-");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error.line, 1u);
  EXPECT_FALSE(r.error.message.empty());
}

TEST(ChaosJsonNumbers, ExponentWithoutDigitsIsAnError) {
  EXPECT_FALSE(parse_nothrow("1e").ok());
  EXPECT_FALSE(parse_nothrow("1e+").ok());
  EXPECT_FALSE(parse_nothrow("[1, 2e]").ok());
}

TEST(ChaosJsonNumbers, LeadingPlusIsAnError) {
  EXPECT_FALSE(parse_nothrow("+1").ok());
}

TEST(ChaosJsonNumbers, HexLiteralIsAnError) {
  // "0x10" parses "0" then leaves "x10" as trailing garbage.
  EXPECT_FALSE(parse_nothrow("0x10").ok());
}

TEST(ChaosJsonNumbers, DoubleDecimalPointIsAnError) {
  EXPECT_FALSE(parse_nothrow("1.2.3").ok());
  EXPECT_FALSE(parse_nothrow("{\"v\": 1..5}").ok());
}

TEST(ChaosJsonNumbers, ValidEdgeNumbersStillParse) {
  EXPECT_TRUE(parse_nothrow("-0.5").ok());
  EXPECT_TRUE(parse_nothrow("1e3").ok());
  EXPECT_TRUE(parse_nothrow("2.5E-4").ok());
}

// ----------------------------------------------------- truncated documents

TEST(ChaosJsonTruncation, LoneOpenBraceReportsError) {
  const JsonParseResult r = parse_nothrow("{");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.to_string().find("line 1"), std::string::npos);
}

TEST(ChaosJsonTruncation, ArrayCutAfterCommaReportsError) {
  EXPECT_FALSE(parse_nothrow("[1,").ok());
}

TEST(ChaosJsonTruncation, UnterminatedStringReportsError) {
  const JsonParseResult r = parse_nothrow("\"abc");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.message.find("unterminated"), std::string::npos);
}

TEST(ChaosJsonTruncation, ObjectCutMidValueReportsError) {
  EXPECT_FALSE(parse_nothrow("{\"k\":").ok());
  EXPECT_FALSE(parse_nothrow("{\"k\": 1,").ok());
  EXPECT_FALSE(parse_nothrow("{\"k\": \"v").ok());
}

TEST(ChaosJsonTruncation, TruncatedEscapesReportError) {
  EXPECT_FALSE(parse_nothrow("\"a\\").ok());
  EXPECT_FALSE(parse_nothrow("\"a\\u12").ok());
}

TEST(ChaosJsonTruncation, EmptyInputReportsError) {
  const JsonParseResult r = parse_nothrow("");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.message.find("end of input"), std::string::npos);
}

// --------------------------------------------------------- duplicate keys

TEST(ChaosJsonDuplicates, FirstKeyWins) {
  // The ordered-object representation keeps both members; find() returns
  // the first. Schema readers therefore see the first occurrence — the
  // behaviour scenario_from_json relies on, pinned here so a change to
  // the lookup order cannot slip in silently.
  const JsonParseResult r = parse_nothrow("{\"a\": 1, \"a\": 2}");
  ASSERT_TRUE(r.ok());
  const JsonValue* a = r.value->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_number(), 1.0);
  EXPECT_EQ(r.value->as_object().size(), 2u);  // both retained
}

// ----------------------------------------------------------- depth limit

TEST(ChaosJsonDepth, PathologicalNestingFailsGracefully) {
  // A megabyte of '[' used to be a stack overflow (a crash, not an
  // error). The parser bounds container nesting instead.
  const std::string bombs[] = {
      std::string(100000, '['),
      std::string(300, '[') + "1" + std::string(300, ']'),
      [] {
        std::string s;
        for (int i = 0; i < 5000; ++i) s += "{\"k\":";
        return s;
      }(),
  };
  for (const std::string& bomb : bombs) {
    const JsonParseResult r = parse_nothrow(bomb);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("nesting"), std::string::npos);
  }
}

TEST(ChaosJsonDepth, DeepButBoundedNestingStillParses) {
  // 200 levels is comfortably inside the 256 cap.
  std::string doc = std::string(200, '[') + "42" + std::string(200, ']');
  const JsonParseResult r = parse_nothrow(doc);
  ASSERT_TRUE(r.ok());
}

// ---------------------------------------------------------- misc garbage

TEST(ChaosJsonGarbage, NeverThrowsOnAssortedInvalidInputs) {
  const char* inputs[] = {
      "tru",          "nul",   "[1 2]",      "{\"k\" 1}",
      "{k: 1}",       "[,]",   "{,}",        "\x01",
      "[1]]",         "1 2",   "\"\\x41\"",  "{\"k\": }",
  };
  for (const char* text : inputs) {
    EXPECT_FALSE(parse_nothrow(text).ok()) << "input: " << text;
  }
}

// ------------------------------------------------- topology schema

TEST(TopologySchema, RoundTripsEveryField) {
  Scenario s;
  s.name = "campus";
  s.duration = 2.0;
  s.num_stas = 8;
  sim::TopologySpec topo;
  topo.ap_count = 16;
  topo.ap_spacing = 25.0;
  topo.channel_count = 4;
  topo.roam_hysteresis_db = 2.5;
  topo.roam_interval = 0.125;
  topo.activity_factor = 0.75;
  topo.cell_size = 12.0;
  s.topology = topo;

  const ScenarioParseResult r = scenario_from_json(scenario_to_json(s));
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  ASSERT_TRUE(r.scenario->topology.has_value());
  const sim::TopologySpec& p = *r.scenario->topology;
  EXPECT_EQ(p.ap_count, 16u);
  EXPECT_DOUBLE_EQ(p.ap_spacing, 25.0);
  EXPECT_EQ(p.channel_count, 4u);
  EXPECT_DOUBLE_EQ(p.roam_hysteresis_db, 2.5);
  EXPECT_DOUBLE_EQ(p.roam_interval, 0.125);
  EXPECT_DOUBLE_EQ(p.activity_factor, 0.75);
  EXPECT_DOUBLE_EQ(p.cell_size, 12.0);
  EXPECT_EQ(scenario_to_json(*r.scenario), scenario_to_json(s));
}

TEST(TopologySchema, AbsentSectionStaysDisengaged) {
  const ScenarioParseResult r =
      scenario_from_json(R"({"name": "x", "duration": 1})");
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  EXPECT_FALSE(r.scenario->topology.has_value());
  // And the emitter must not invent one.
  EXPECT_EQ(scenario_to_json(*r.scenario).find("topology"),
            std::string::npos);
}

TEST(TopologySchema, OmittedKeysKeepSpecDefaults) {
  const ScenarioParseResult r = scenario_from_json(
      R"({"name": "x", "duration": 1, "topology": {"ap_count": 4}})");
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  ASSERT_TRUE(r.scenario->topology.has_value());
  const sim::TopologySpec defaults;
  EXPECT_EQ(r.scenario->topology->ap_count, 4u);
  EXPECT_DOUBLE_EQ(r.scenario->topology->ap_spacing, defaults.ap_spacing);
  EXPECT_EQ(r.scenario->topology->channel_count, defaults.channel_count);
  EXPECT_DOUBLE_EQ(r.scenario->topology->roam_interval,
                   defaults.roam_interval);
}

TEST(TopologySchema, ViolationsReportDottedPaths) {
  struct Case {
    const char* json;
    const char* path_fragment;
  };
  const Case cases[] = {
      {R"({"name": "x", "duration": 1, "topology": 3})", "topology"},
      {R"({"name": "x", "duration": 1, "topology": {"ap_count": 0}})",
       "topology.ap_count"},
      {R"({"name": "x", "duration": 1, "topology": {"ap_count": 2000}})",
       "topology.ap_count"},
      {R"({"name": "x", "duration": 1,
           "topology": {"ap_count": 1.5}})",
       "topology.ap_count"},
      {R"({"name": "x", "duration": 1,
           "topology": {"ap_spacing": -2.0}})",
       "topology.ap_spacing"},
      {R"({"name": "x", "duration": 1,
           "topology": {"channel_count": 0}})",
       "topology.channel_count"},
      {R"({"name": "x", "duration": 1,
           "topology": {"roam_hysteresis_db": -1}})",
       "topology.roam_hysteresis_db"},
      {R"({"name": "x", "duration": 1,
           "topology": {"roam_interval": 0}})",
       "topology.roam_interval"},
      {R"({"name": "x", "duration": 1,
           "topology": {"activity_factor": 1.25}})",
       "topology.activity_factor"},
      {R"({"name": "x", "duration": 1,
           "topology": {"cell_size": 0}})",
       "topology.cell_size"},
  };
  for (const Case& c : cases) {
    ScenarioParseResult r;
    EXPECT_NO_THROW(r = scenario_from_json(c.json)) << c.json;
    ASSERT_FALSE(r.ok()) << c.json;
    EXPECT_NE(r.error.path.find(c.path_fragment), std::string::npos)
        << "error path '" << r.error.path << "' for " << c.json;
    EXPECT_FALSE(r.error.message.empty());
  }
}

// ---------------------------------------------------------- json_to_u64

TEST(ChaosJsonToU64, AcceptsExactIntegersOnly) {
  std::uint64_t out = 0;
  const JsonValue zero(0.0);
  EXPECT_TRUE(json_to_u64(&zero, out));
  EXPECT_EQ(out, 0u);
  const JsonValue big(9007199254740992.0);  // 2^53, the last exact one
  EXPECT_TRUE(json_to_u64(&big, out));
  EXPECT_EQ(out, 9007199254740992ull);
}

TEST(ChaosJsonToU64, RejectsEverythingTheCastCannotRepresent) {
  // Each of these would be an undefined static_cast<uint64_t> if it
  // reached the conversion: NaN passes a naive `< 0` check, 1e300 and
  // infinity overflow, and fractions silently truncate.
  std::uint64_t out = 0;
  const JsonValue negative(-1.0);
  const JsonValue fractional(1.5);
  const JsonValue huge(1e300);
  const JsonValue inf(std::numeric_limits<double>::infinity());
  const JsonValue nan(std::numeric_limits<double>::quiet_NaN());
  const JsonValue text(std::string("7"));
  EXPECT_FALSE(json_to_u64(&negative, out));
  EXPECT_FALSE(json_to_u64(&fractional, out));
  EXPECT_FALSE(json_to_u64(&huge, out));
  EXPECT_FALSE(json_to_u64(&inf, out));
  EXPECT_FALSE(json_to_u64(&nan, out));
  EXPECT_FALSE(json_to_u64(&text, out));
  EXPECT_FALSE(json_to_u64(nullptr, out));
}

}  // namespace
}  // namespace carpool::chaos
