// carpool::chaos — JSON layer, scenario schema, invariants, soak runner,
// repro bundles, and the shrinker (docs/SOAK.md).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "chaos/invariants.hpp"
#include "chaos/json.hpp"
#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "chaos/shrink.hpp"
#include "chaos/snr_trace.hpp"
#include "carpool/transceiver.hpp"
#include "mac/params.hpp"
#include "mac/simulator.hpp"
#include "obs/registry.hpp"
#include "sim/topology.hpp"
#include "traffic/generators.hpp"

namespace carpool::chaos {
namespace {

// ---------------------------------------------------------------- JSON

TEST(ChaosJson, RoundTripPreservesStructure) {
  const std::string text =
      R"({"name": "x", "n": 3, "f": 1.5, "flag": true, "none": null,)"
      R"( "list": [1, 2, 3], "nested": {"a": "b"}})";
  const JsonParseResult first = json_parse(text);
  ASSERT_TRUE(first.ok()) << first.error.to_string();
  const std::string dumped = json_dump(*first.value);
  const JsonParseResult second = json_parse(dumped);
  ASSERT_TRUE(second.ok()) << second.error.to_string();
  EXPECT_EQ(json_dump(*second.value), dumped);
  const JsonValue* n = first.value->find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_DOUBLE_EQ(n->as_number(), 3.0);
  EXPECT_EQ(first.value->find("missing"), nullptr);
}

TEST(ChaosJson, IntegersPrintWithoutDecimalPoint) {
  // Seeds and frame indices must round-trip textually.
  JsonObject obj;
  json_set(obj, "seed", JsonValue(1234567890.0));
  json_set(obj, "frac", JsonValue(0.25));
  const std::string dumped = json_dump(JsonValue(std::move(obj)));
  EXPECT_NE(dumped.find("1234567890"), std::string::npos);
  EXPECT_EQ(dumped.find("1234567890."), std::string::npos);
  EXPECT_NE(dumped.find("0.25"), std::string::npos);
}

TEST(ChaosJson, MalformedInputReportsLineAndColumn) {
  const JsonParseResult r = json_parse("{\n  \"a\": ,\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error.message.empty());
  EXPECT_EQ(r.error.line, 2u);
  EXPECT_GT(r.error.column, 0u);
}

TEST(ChaosJson, TrailingGarbageIsAnError) {
  EXPECT_FALSE(json_parse("{} trailing").ok());
  EXPECT_FALSE(json_parse("").ok());
  EXPECT_FALSE(json_parse("[1, 2").ok());
}

TEST(ChaosJson, UnicodeEscapeDecodesToUtf8) {
  const JsonParseResult r = json_parse(R"({"s": "Aé"})");
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  EXPECT_EQ(r.value->find("s")->as_string(), "A\xc3\xa9");
}

// ------------------------------------------------------------ scenarios

Scenario full_scenario() {
  Scenario s;
  s.name = "full";
  s.seed = 777;
  s.duration = 6.0;
  s.num_stas = 5;
  s.scheme = mac::Scheme::kCarpool;
  s.default_snr_db = 22.0;
  s.probe_interval = 0.5;
  s.link_policy.rate_adaptation = true;
  s.link_policy.feedback = true;
  s.link_policy.suspension = true;
  s.mobility.push_back(
      {2, {{0.0, {5.0, 4.0}}, {3.0, {9.0, 9.0}}, {6.0, {5.0, 4.0}}}});
  s.interference.push_back({1.0, 2.5, 6.0, 0.8, {1, 3}});
  s.interference.push_back({3.0, 5.0, 10.0, 1.2, {}});
  s.churn.push_back({2.0, 4, false});
  s.churn.push_back({4.0, 4, true});
  s.traffic.push_back({0.0, TrafficKind::kCbr, 900, 5e-3});
  s.traffic.push_back({3.0, TrafficKind::kVoip, 1200, 4e-3});
  s.inject = InjectedViolation{400};
  return s;
}

TEST(ChaosScenario, RoundTripFieldForField) {
  const Scenario s = full_scenario();
  const ScenarioParseResult r = scenario_from_json(scenario_to_json(s));
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  const Scenario& p = *r.scenario;
  EXPECT_EQ(p.name, s.name);
  EXPECT_EQ(p.seed, s.seed);
  EXPECT_DOUBLE_EQ(p.duration, s.duration);
  EXPECT_EQ(p.num_stas, s.num_stas);
  EXPECT_EQ(p.scheme, s.scheme);
  EXPECT_DOUBLE_EQ(p.default_snr_db, s.default_snr_db);
  EXPECT_DOUBLE_EQ(p.probe_interval, s.probe_interval);
  EXPECT_EQ(p.link_policy.rate_adaptation, s.link_policy.rate_adaptation);
  EXPECT_EQ(p.link_policy.feedback, s.link_policy.feedback);
  EXPECT_EQ(p.link_policy.suspension, s.link_policy.suspension);
  ASSERT_EQ(p.mobility.size(), 1u);
  EXPECT_EQ(p.mobility[0].sta, 2u);
  ASSERT_EQ(p.mobility[0].waypoints.size(), 3u);
  EXPECT_DOUBLE_EQ(p.mobility[0].waypoints[1].p.x, 9.0);
  ASSERT_EQ(p.interference.size(), 2u);
  EXPECT_DOUBLE_EQ(p.interference[0].snr_penalty_db, 6.0);
  EXPECT_EQ(p.interference[0].stas, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_TRUE(p.interference[1].stas.empty());
  ASSERT_EQ(p.churn.size(), 2u);
  EXPECT_FALSE(p.churn[0].join);
  EXPECT_TRUE(p.churn[1].join);
  ASSERT_EQ(p.traffic.size(), 2u);
  EXPECT_EQ(p.traffic[1].kind, TrafficKind::kVoip);
  ASSERT_TRUE(p.inject.has_value());
  EXPECT_EQ(p.inject->frame, 400u);
  // Textual idempotence: serialize(parse(serialize(s))) == serialize(s).
  EXPECT_EQ(scenario_to_json(p), scenario_to_json(s));
}

TEST(ChaosScenario, DefaultScenariosRoundTrip) {
  const std::vector<Scenario> defaults = default_scenarios();
  ASSERT_GE(defaults.size(), 3u);
  for (const Scenario& s : defaults) {
    const ScenarioParseResult r = scenario_from_json(scenario_to_json(s));
    ASSERT_TRUE(r.ok()) << s.name << ": " << r.error.to_string();
    EXPECT_EQ(scenario_to_json(*r.scenario), scenario_to_json(s)) << s.name;
  }
}

TEST(ChaosScenario, SyntaxErrorIsStructuredNotACrash) {
  const ScenarioParseResult r = scenario_from_json("{\"name\": \"x\",,}");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error.message.empty());
}

TEST(ChaosScenario, SchemaViolationsReportDottedPaths) {
  struct Case {
    const char* json;
    const char* path_fragment;
  };
  const Case cases[] = {
      {R"({"name": "x", "duration": 0})", "duration"},
      {R"({"name": "x", "duration": 1, "num_stas": 0})", "num_stas"},
      {R"({"name": "x", "duration": 1, "scheme": "warpdrive"})", "scheme"},
      {R"({"name": "x", "duration": 1, "num_stas": 2,
           "churn": [{"time": 0.5, "sta": 9, "join": false}]})",
       "churn"},
      {R"({"name": "x", "duration": 1,
           "interference": [{"start": 2.0, "stop": 1.0}]})",
       "interference"},
      {R"({"name": "x", "duration": 1, "num_stas": 2, "mobility":
           [{"sta": 1, "waypoints": [{"time": 1.0, "x": 0, "y": 0},
                                     {"time": 0.5, "x": 1, "y": 1}]}]})",
       "mobility"},
      {R"({"name": "x", "duration": 1,
           "traffic": [{"start": 0, "kind": "cbr", "frame_bytes": 0}]})",
       "traffic"},
  };
  for (const Case& c : cases) {
    const ScenarioParseResult r = scenario_from_json(c.json);
    ASSERT_FALSE(r.ok()) << c.json;
    EXPECT_NE(r.error.path.find(c.path_fragment), std::string::npos)
        << "error path '" << r.error.path << "' for " << c.json;
    EXPECT_FALSE(r.error.message.empty());
  }
}

TEST(ChaosScenario, DeriveSeedSeparatesRepeatAndSalt) {
  const std::uint64_t a = derive_seed(42, 0, 0);
  EXPECT_EQ(a, derive_seed(42, 0, 0));
  EXPECT_NE(a, derive_seed(42, 1, 0));
  EXPECT_NE(a, derive_seed(42, 0, 1));
  EXPECT_NE(a, derive_seed(43, 0, 0));
}

// ------------------------------------------------------------ invariants

mac::SimResult balanced_totals() {
  mac::SimResult t;
  t.dl_frames_delivered = 60;
  t.ul_frames_delivered = 30;
  t.dl_frames_dropped = 5;
  t.ul_frames_dropped = 5;
  t.airtime_payload = 0.01;
  t.airtime_overhead = 0.002;
  t.airtime_collision = 0.001;
  return t;
}

mac::SimStepView balanced_view(const mac::SimResult& t,
                               const mac::MacParams& p) {
  mac::SimStepView view;
  view.now = 1.0;
  view.frames_generated = 110;
  view.frames_judged = 100;
  view.frames_inflight = 10;
  view.num_stas = 4;
  view.totals = &t;
  view.params = &p;
  return view;
}

TEST(ChaosInvariants, BalancedStepPasses) {
  const mac::SimResult t = balanced_totals();
  const mac::MacParams p{};
  StepInvariants inv(0, 0.0, 0, 0);
  EXPECT_FALSE(inv.check(balanced_view(t, p)).has_value());
}

TEST(ChaosInvariants, AccountingImbalanceTrips) {
  const mac::SimResult t = balanced_totals();
  const mac::MacParams p{};
  StepInvariants inv(1000, 2.0, 3, 1);
  mac::SimStepView view = balanced_view(t, p);
  view.frames_inflight = 7;  // three frames leaked
  const auto v = inv.check(view);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "accounting_balance");
  EXPECT_EQ(v->frame, 1000u + view.frames_judged);
  EXPECT_DOUBLE_EQ(v->time, 2.0 + view.now);
  EXPECT_EQ(v->episode, 3u);
  EXPECT_EQ(v->repeat, 1u);
  // Latched: the same broken view reports nothing new.
  EXPECT_FALSE(inv.check(view).has_value());
}

TEST(ChaosInvariants, SequentialAckArithmeticChecked) {
  const mac::SimResult t = balanced_totals();
  const mac::MacParams p{};
  const double single = p.sifs + p.ack_duration();

  mac::SimStepView view = balanced_view(t, p);
  view.txop.downlink = true;
  view.txop.sequential_ack = true;
  view.txop.subunits = 3;
  view.txop.data_duration = 1e-3;
  view.txop.ack_overhead = 3.0 * single;  // Eq. (1)/(2) consistent
  StepInvariants good(0, 0.0, 0, 0);
  EXPECT_FALSE(good.check(view).has_value());

  view.txop.ack_overhead = 2.0 * single;  // one ACK short
  StepInvariants bad(0, 0.0, 0, 0);
  const auto v = bad.check(view);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "nav_seq_ack");
}

TEST(ChaosInvariants, BusyAirtimeBeyondClockTrips) {
  mac::SimResult t = balanced_totals();
  t.airtime_payload = 5.0;  // impossible: 5 s busy inside a 1 s run
  const mac::MacParams p{};
  StepInvariants inv(0, 0.0, 0, 0);
  const auto v = inv.check(balanced_view(t, p));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "sane_metrics");
}

TEST(ChaosInvariants, DecodeChecks) {
  CarpoolRxResult rx;  // default: clean decode, nothing matched
  EXPECT_FALSE(check_decode(rx, 1, 0.0, 0, 0).has_value());

  rx.status = DecodeStatus::kInternalError;
  auto v = check_decode(rx, 1, 0.0, 0, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "decode_no_throw");

  rx.status = DecodeStatus::kOk;
  rx.subframes.emplace_back();  // decoded entry without a Bloom match
  v = check_decode(rx, 2, 0.0, 0, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "decode_accounting");

  rx.matched.push_back(0);
  rx.subframes[0].fcs_ok = true;
  rx.subframes[0].decoded = false;  // FCS pass without a decode
  v = check_decode(rx, 3, 0.0, 0, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "decode_accounting");

  rx.subframes[0].decoded = true;
  rx.rte_estimate_norm = std::numeric_limits<double>::quiet_NaN();
  v = check_decode(rx, 4, 0.0, 0, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "rte_bounded");

  rx.rte_estimate_norm = 5e4;  // finite but absurd
  v = check_decode(rx, 5, 0.0, 0, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "rte_bounded");

  rx.rte_estimate_norm = 1.2;
  EXPECT_FALSE(check_decode(rx, 6, 0.0, 0, 0).has_value());
}

EpisodeSummary rung(double intensity, double goodput,
                    std::uint64_t judged = 100) {
  EpisodeSummary e;
  e.intensity = intensity;
  e.goodput_bps = goodput;
  e.frames_judged = judged;
  return e;
}

TEST(ChaosInvariants, GoodputCliffDetected) {
  const std::vector<EpisodeSummary> episodes = {
      rung(0.0, 10e6), rung(0.5, 8e6), rung(1.0, 0.5e6)};  // 8 -> 0.5: cliff
  const auto v = check_goodput_cliffs(episodes);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "goodput_cliff");
}

TEST(ChaosInvariants, GradualDegradationPasses) {
  const std::vector<EpisodeSummary> episodes = {
      rung(0.0, 10e6), rung(0.5, 6e6), rung(1.0, 2e6), rung(1.5, 0.5e6)};
  EXPECT_FALSE(check_goodput_cliffs(episodes).has_value());
}

TEST(ChaosInvariants, StarvedRungsAreNotCliffs) {
  // An idle rung (no judgements) is excluded outright, and a gentler rung
  // that was itself starved (< 100 kbit/s) never anchors a comparison —
  // so even a 98% drop from 80 kbit/s is not a cliff.
  const std::vector<EpisodeSummary> episodes = {
      rung(0.0, 8e4), rung(0.5, 0.0, 0), rung(1.0, 1e3)};
  EXPECT_FALSE(check_goodput_cliffs(episodes).has_value());
}

// ----------------------------------------------------- simulator hooks

TEST(SimulatorHooks, ObserverSeesBalancedStepsAndCanStopEarly) {
  mac::SimConfig cfg;
  cfg.scheme = mac::Scheme::kCarpool;
  cfg.num_stas = 3;
  cfg.duration = 5.0;
  cfg.seed = 9;
  cfg.default_snr_db = 30.0;
  std::size_t steps = 0;
  StepInvariants inv(0, 0.0, 0, 0);
  std::optional<Violation> violation;
  cfg.observer = [&](const mac::SimStepView& view) {
    ++steps;
    if (auto v = inv.check(view)) violation = v;
    return steps < 50;  // stop long before the 5 s horizon
  };
  auto make_sim = [&cfg] {
    auto sim = std::make_unique<mac::Simulator>(cfg);
    for (mac::NodeId sta = 1; sta <= 3; ++sta) {
      sim->add_flow(traffic::make_cbr_flow(sta, 800, 2e-3));
    }
    return sim;
  };
  const mac::SimResult stopped = make_sim()->run();
  EXPECT_EQ(steps, 50u);
  EXPECT_FALSE(violation.has_value()) << violation->detail;

  cfg.observer = nullptr;
  const mac::SimResult full = make_sim()->run();
  // Stopping after 50 TXOPs delivered a fraction of the full run.
  EXPECT_LT(stopped.dl_frames_delivered, full.dl_frames_delivered / 4);
}

TEST(SimulatorHooks, SnrFunctionShiftsGoodput) {
  auto run_with_snr = [](double snr_db) {
    mac::SimConfig cfg;
    cfg.scheme = mac::Scheme::kCarpool;
    cfg.num_stas = 2;
    cfg.duration = 3.0;
    cfg.seed = 5;
    cfg.sta_snr_fn = [snr_db](mac::NodeId, double) { return snr_db; };
    mac::Simulator sim(cfg);
    sim.add_flow(traffic::make_cbr_flow(1, 1200, 2e-3));
    sim.add_flow(traffic::make_cbr_flow(2, 1200, 2e-3));
    return sim.run().downlink_goodput_bps;
  };
  const double good = run_with_snr(30.0);
  const double poor = run_with_snr(3.0);
  EXPECT_GT(good, 0.0);
  EXPECT_LT(poor, good);
}

// ---------------------------------------------------------- soak runner

Scenario small_clean_scenario() {
  Scenario s;
  s.name = "unit_small";
  s.seed = 31;
  s.duration = 1.0;
  s.num_stas = 3;
  s.probe_interval = 0.25;
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1000, 4e-3});
  s.interference.push_back({0.4, 0.7, 6.0, 0.8, {}});
  s.churn.push_back({0.5, 3, false});
  return s;
}

TEST(SoakRunner, SmallCampaignRunsClean) {
  const SoakRunner runner;
  const SoakReport report = runner.run(small_clean_scenario());
  EXPECT_TRUE(report.ok()) << report.violations.front().detail;
  EXPECT_GT(report.frames_judged, 0u);
  EXPECT_GT(report.steps, 0u);
  EXPECT_GT(report.probes, 0u);
  EXPECT_GE(report.episodes_run, 3u);  // interference + churn split it
  EXPECT_EQ(report.repeats, 1u);
  EXPECT_GT(report.mean_goodput_bps, 0.0);
}

TEST(SoakRunner, CampaignIsDeterministic) {
  const SoakRunner runner;
  const Scenario s = small_clean_scenario();
  const SoakReport a = runner.run(s);
  const SoakReport b = runner.run(s);
  EXPECT_EQ(a.frames_judged, b.frames_judged);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_DOUBLE_EQ(a.mean_goodput_bps, b.mean_goodput_bps);
}

TEST(SoakRunner, FrameBudgetRepeatsTimeline) {
  const SoakReport once = SoakRunner{}.run(small_clean_scenario());
  SoakOptions opts;
  opts.max_frames = once.frames_judged * 3;
  const SoakReport report = SoakRunner(opts).run(small_clean_scenario());
  EXPECT_TRUE(report.ok());
  EXPECT_GE(report.frames_judged, opts.max_frames);
  EXPECT_GE(report.repeats, 3u);
}

// -------------------------------------------------------- repro bundles

Scenario injected_scenario() {
  Scenario s = small_clean_scenario();
  s.name = "unit_injected";
  s.duration = 2.0;
  s.inject = InjectedViolation{700};
  return s;
}

TEST(ReproBundle, InjectedFaultRoundTripsAndReplays) {
  const Scenario s = injected_scenario();
  const SoakReport report = SoakRunner{}.run(s);
  ASSERT_FALSE(report.ok());
  const Violation& v = report.violations.front();
  EXPECT_EQ(v.invariant, "injected");
  EXPECT_EQ(v.frame, 700u);

  // serialize -> parse -> identical coordinates.
  const ReproBundle bundle{s, v};
  const std::string text = bundle_to_json(bundle);
  const BundleParseResult parsed = bundle_from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error.to_string();
  EXPECT_EQ(parsed.bundle->violation.invariant, v.invariant);
  EXPECT_EQ(parsed.bundle->violation.frame, v.frame);
  EXPECT_EQ(parsed.bundle->violation.episode, v.episode);
  EXPECT_EQ(parsed.bundle->violation.repeat, v.repeat);
  EXPECT_EQ(parsed.bundle->scenario.seed, s.seed);
  EXPECT_EQ(scenario_to_json(parsed.bundle->scenario), scenario_to_json(s));

  // re-run from the parsed bundle -> same violation at the same
  // (seed, frame).
  const ReplayResult replay = replay_bundle(*parsed.bundle);
  EXPECT_TRUE(replay.reproduced);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->frame, 700u);
}

TEST(ReproBundle, MalformedBundlesYieldStructuredErrors) {
  // Bad JSON syntax.
  EXPECT_FALSE(bundle_from_json("{not json").ok());
  // Valid JSON, missing violation block.
  EXPECT_FALSE(bundle_from_json(R"({"schema_version": 1})").ok());
  // Valid JSON, embedded scenario fails validation.
  const BundleParseResult r = bundle_from_json(R"({
    "schema_version": 1,
    "violation": {"invariant": "injected", "detail": "", "frame": 5,
                  "time": 0.0, "episode": 0, "repeat": 0},
    "scenario": {"name": "bad", "duration": -1}
  })");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error.message.empty());
}

TEST(ReproBundle, ShrinkerReducesTimelineAndStillReproduces) {
  const Scenario s = injected_scenario();
  const SoakReport report = SoakRunner{}.run(s);
  ASSERT_FALSE(report.ok());
  const ReproBundle bundle{s, report.violations.front()};

  const ShrinkResult shrunk = shrink_bundle(bundle);
  EXPECT_GT(shrunk.attempts, 0u);
  EXPECT_GT(shrunk.accepted, 0u);
  EXPECT_LE(shrunk.timeline_ratio, 0.25);
  EXPECT_LT(shrunk.scenario.timeline_seconds(), s.timeline_seconds());
  EXPECT_EQ(shrunk.violation.invariant, "injected");
  EXPECT_EQ(shrunk.violation.frame, 700u);

  // The shrunk bundle must replay bit for bit, including after a JSON
  // round trip.
  const std::string text =
      bundle_to_json({shrunk.scenario, shrunk.violation});
  const BundleParseResult parsed = bundle_from_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error.to_string();
  const ReplayResult replay = replay_bundle(*parsed.bundle);
  EXPECT_TRUE(replay.reproduced);
}

// ---------------------------------------------------- recorded SNR traces

TEST(SnrTraceIngest, CsvParsesAndStepHolds) {
  const SnrTraceParseResult r = snr_trace_from_csv(
      "time,sta,snr_db\n"
      "# capture from lab AP\n"
      "0.0,1,20\n"
      "1.0,1,10\n"
      "0.5,2,30\n"
      "\n");
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  const SnrTrace& t = *r.trace;
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.max_sta(), 2u);
  // Step-hold: latest sample at or before the query time.
  EXPECT_DOUBLE_EQ(t.snr_at(1, 0.0, -1.0), 20.0);
  EXPECT_DOUBLE_EQ(t.snr_at(1, 0.99, -1.0), 20.0);
  EXPECT_DOUBLE_EQ(t.snr_at(1, 1.0, -1.0), 10.0);
  EXPECT_DOUBLE_EQ(t.snr_at(1, 50.0, -1.0), 10.0);
  // Before the STA's first sample, or for an unknown STA: fallback.
  EXPECT_DOUBLE_EQ(t.snr_at(2, 0.2, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(t.snr_at(7, 1.0, 25.0), 25.0);
  // Broadcast mean over STAs with a sample at or before t.
  EXPECT_DOUBLE_EQ(t.mean_snr_at(0.1, -1.0), 20.0);
  EXPECT_DOUBLE_EQ(t.mean_snr_at(0.75, -1.0), 25.0);  // (20 + 30) / 2
  EXPECT_DOUBLE_EQ(SnrTrace{}.mean_snr_at(1.0, 4.0), 4.0);
}

TEST(SnrTraceIngest, JsonlParsesAndSniffs) {
  const std::string text =
      "{\"t\": 0.0, \"sta\": 1, \"snr_db\": 18}\n"
      "# comment\n"
      "{\"time\": 2.0, \"sta\": 1, \"snr\": 12}\n";
  const SnrTraceParseResult r = snr_trace_from_jsonl(text);
  ASSERT_TRUE(r.ok()) << r.error.to_string();
  EXPECT_EQ(r.trace->size(), 2u);
  EXPECT_DOUBLE_EQ(r.trace->snr_at(1, 1.0, 0.0), 18.0);
  EXPECT_DOUBLE_EQ(r.trace->snr_at(1, 2.0, 0.0), 12.0);

  // The sniffer keys off the first non-space character.
  const SnrTraceParseResult sniffed = snr_trace_from_text("  " + text);
  ASSERT_TRUE(sniffed.ok());
  EXPECT_EQ(sniffed.trace->size(), 2u);
  EXPECT_TRUE(snr_trace_from_text("time,sta,snr_db\n0,1,5\n").ok());
}

TEST(SnrTraceIngest, RejectsMalformedRowsWithLineNumbers) {
  // STA 0 is the AP: recorded traces address stations only.
  const SnrTraceParseResult sta0 = snr_trace_from_csv("0.0,0,20\n");
  ASSERT_FALSE(sta0.ok());
  EXPECT_EQ(sta0.error.line, 1u);

  EXPECT_FALSE(snr_trace_from_csv("0.0,1\n").ok());         // short row
  EXPECT_FALSE(snr_trace_from_csv("-1.0,1,20\n").ok());     // negative t
  EXPECT_FALSE(snr_trace_from_csv("0.0,1,nan\n").ok());     // non-finite
  EXPECT_FALSE(snr_trace_from_csv("x,1,20\n").ok());        // garbage

  const SnrTraceParseResult late = snr_trace_from_csv(
      "0.0,1,20\n1.0,1,21\nbogus\n");
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error.line, 3u);

  EXPECT_FALSE(snr_trace_from_jsonl("{\"t\": 0.0}\n").ok());
  EXPECT_FALSE(snr_trace_from_jsonl("{not json}\n").ok());
}

TEST(ScenarioSchema, RoundTripsRecordedTraceAndShadowing) {
  Scenario s;
  s.name = "measured";
  s.duration = 3.0;
  s.num_stas = 2;
  s.snr_trace = SnrTrace{{{0.0, 1, 22.0}, {1.5, 2, 17.0}}};
  s.shadowing = ShadowingSpec{3.0, 4.0, 0.5, 0.2};

  const ScenarioParseResult round = scenario_from_json(scenario_to_json(s));
  ASSERT_TRUE(round.ok()) << round.error.to_string();
  EXPECT_EQ(round.scenario->snr_trace.size(), 2u);
  EXPECT_DOUBLE_EQ(round.scenario->snr_trace.snr_at(2, 2.0, 0.0), 17.0);
  ASSERT_TRUE(round.scenario->shadowing.has_value());
  EXPECT_DOUBLE_EQ(round.scenario->shadowing->sigma_db, 3.0);
  EXPECT_DOUBLE_EQ(round.scenario->shadowing->decorr_distance, 4.0);
  EXPECT_DOUBLE_EQ(round.scenario->shadowing->decorr_time, 0.5);
  EXPECT_DOUBLE_EQ(round.scenario->shadowing->sample_interval, 0.2);
  // Serialization is canonical: a second round trip is a fixpoint.
  EXPECT_EQ(scenario_to_json(*round.scenario), scenario_to_json(s));
}

// --------------------------------------------------------- margin tracker

TEST(Margins, TrackerKeepsPerInvariantMinima) {
  MarginTracker m;
  EXPECT_DOUBLE_EQ(m.overall(), 1.0);
  m.observe("a", 0.8);
  m.observe("a", 0.3);
  m.observe("a", 0.5);
  m.observe("b", -0.2);
  ASSERT_EQ(m.minima().size(), 2u);
  EXPECT_DOUBLE_EQ(m.minima().at("a"), 0.3);
  EXPECT_DOUBLE_EQ(m.minima().at("b"), -0.2);
  EXPECT_DOUBLE_EQ(m.overall(), -0.2);
}

TEST(Margins, MergeIsCommutativePointwiseMin) {
  MarginTracker a, b;
  a.observe("x", 0.5);
  a.observe("y", 0.9);
  b.observe("x", 0.2);
  b.observe("z", 0.1);
  MarginTracker ab = a;
  ab.merge_from(b);
  MarginTracker ba = b;
  ba.merge_from(a);
  EXPECT_EQ(ab.minima(), ba.minima());
  EXPECT_DOUBLE_EQ(ab.minima().at("x"), 0.2);
  EXPECT_DOUBLE_EQ(ab.minima().at("y"), 0.9);
  EXPECT_DOUBLE_EQ(ab.minima().at("z"), 0.1);
}

// ------------------------------------------- fairness / energy invariants

mac::SimResult served_result(std::vector<double> goodputs) {
  mac::SimResult res;
  res.duration = 1.0;
  res.dl_frames_delivered = 1000;
  res.per_sta_goodput_bps = std::move(goodputs);  // index 0 = AP
  return res;
}

TEST(FairnessInvariant, BalancedSharesPassWithHeadroom) {
  MarginTracker m;
  const auto v = check_fairness(served_result({0.0, 1e6, 0.9e6, 1.1e6}),
                                FairnessConfig{}, 1, 0.0, 0, 0, &m);
  EXPECT_FALSE(v.has_value());
  ASSERT_EQ(m.minima().count("fairness_floor"), 1u);
  EXPECT_GT(m.minima().at("fairness_floor"), 0.5);
}

TEST(FairnessInvariant, StarvedStationTripsTheFloor) {
  // One STA at ~0.1% of the mean: below the 1% min-share floor.
  MarginTracker m;
  const auto v = check_fairness(served_result({0.0, 1e6, 1e6, 1e3}),
                                FairnessConfig{}, 7, 2.5, 1, 3, &m);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "fairness_floor");
  EXPECT_EQ(v->frame, 7u);
  EXPECT_EQ(v->episode, 1u);
  EXPECT_EQ(v->repeat, 3u);
  EXPECT_LT(m.minima().at("fairness_floor"), 0.0);
}

TEST(FairnessInvariant, SkipsStarvedOrSingleStaEpisodes) {
  MarginTracker m;
  // Too few judged downlink frames: share statistics are meaningless.
  mac::SimResult idle = served_result({0.0, 1e6, 1e3});
  idle.dl_frames_delivered = 10;
  EXPECT_FALSE(
      check_fairness(idle, FairnessConfig{}, 0, 0, 0, 0, &m).has_value());
  // Only one served STA: no distribution to judge.
  EXPECT_FALSE(check_fairness(served_result({0.0, 1e6, 0.0}),
                              FairnessConfig{}, 0, 0, 0, 0, &m)
                   .has_value());
  EXPECT_TRUE(m.minima().empty());  // skipped checks record no margin
}

TEST(EnergyInvariant, ConsistentLedgerPasses) {
  const mac::PowerModel power{};
  mac::SimResult res;
  res.duration = 2.0;
  mac::NodeEnergy ne;
  ne.tx_seconds = 0.5;
  ne.rx_seconds = 0.7;
  ne.idle_seconds = 0.8;
  ne.joules = 0.5 * power.tx_watts + 0.7 * power.rx_watts +
              0.8 * power.idle_watts;
  res.node_energy = {ne};
  MarginTracker m;
  EXPECT_FALSE(check_energy(res, 0, 0, 0, 0, &m).has_value());
  ASSERT_EQ(m.minima().count("energy_consistency"), 1u);
  EXPECT_GT(m.minima().at("energy_consistency"), 0.0);
}

TEST(EnergyInvariant, OveractiveNodeViolates) {
  mac::SimResult res;
  res.duration = 1.0;
  mac::NodeEnergy ne;
  ne.tx_seconds = 0.9;
  ne.rx_seconds = 0.9;  // tx + rx = 1.8 s inside a 1 s episode
  res.node_energy = {ne};
  const auto v = check_energy(res, 3, 1.0, 0, 0, nullptr);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "energy_consistency");
}

TEST(EnergyInvariant, LedgerDriftViolates) {
  const mac::PowerModel power{};
  mac::SimResult res;
  res.duration = 1.0;
  mac::NodeEnergy ne;
  ne.tx_seconds = 0.2;
  ne.rx_seconds = 0.3;
  ne.idle_seconds = 0.5;
  ne.joules = 0.2 * power.tx_watts + 0.3 * power.rx_watts +
              0.5 * power.idle_watts + 0.5;  // half a joule of drift
  res.node_energy = {ne};
  MarginTracker m;
  const auto v = check_energy(res, 0, 0, 0, 0, &m);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "energy_consistency");
  EXPECT_LT(m.minima().at("energy_consistency"), 0.0);
}

TEST(EnergyInvariant, SoakedScenariosCarryEnergyMargins) {
  // End to end: a clean soak records both episode-level margins.
  Scenario s = small_clean_scenario();
  const SoakReport report = SoakRunner{}.run(s);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.margins.minima().count("energy_consistency"), 1u);
  EXPECT_GT(report.margins.minima().at("energy_consistency"), 0.0);
}

// ------------------------------------------------------ multi-BSS soak

Scenario multi_bss_scenario() {
  Scenario s;
  s.name = "multi_bss_soak";
  s.seed = 61;
  s.duration = 1.0;
  s.num_stas = 4;
  s.probe_interval = 0.2;
  sim::TopologySpec topo;
  topo.ap_count = 2;
  topo.roam_interval = 0.1;
  s.topology = topo;
  // STA 1 walks from AP 0's cell into AP 1's, forcing handover episode
  // cuts; the rest of the chaos schedule exercises churn + interference
  // across the two collision domains.
  s.mobility.push_back(
      {1, {{0.0, {1.0, 1.0}}, {1.0, {21.0, 1.0}}}});
  s.traffic.push_back({0.0, TrafficKind::kCbr, 1000, 4e-3});
  s.interference.push_back({0.4, 0.7, 6.0, 0.8, {}});
  s.churn.push_back({0.5, 3, false});
  return s;
}

/// Run a campaign under a private metric scope; returns the report and
/// fills `fingerprint` with the scope's digest.
SoakReport run_soak_scoped(const Scenario& s, const SoakOptions& opts,
                           std::uint64_t& fingerprint) {
  obs::Registry scope;
  const obs::Registry::ScopedCurrent current(scope);
  const SoakReport report = SoakRunner(opts).run(s);
  fingerprint = scope.fingerprint();
  return report;
}

TEST(MultiBssSoak, TopologyScenarioRunsViolationFree) {
  SoakOptions opts;
  std::uint64_t fp = 0;
  const SoakReport report =
      run_soak_scoped(multi_bss_scenario(), opts, fp);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front().detail);
  EXPECT_GT(report.frames_judged, 0u);
  EXPECT_GT(report.probes, 0u);
  // Handover instants add episode cuts beyond the 4 churn/traffic/
  // interference boundaries of the schedule.
  EXPECT_GT(report.episodes_run, 4u);
}

TEST(MultiBssSoak, CampaignIsDeterministic) {
  SoakOptions opts;
  std::uint64_t fp_a = 0;
  std::uint64_t fp_b = 0;
  const SoakReport a = run_soak_scoped(multi_bss_scenario(), opts, fp_a);
  const SoakReport b = run_soak_scoped(multi_bss_scenario(), opts, fp_b);
  EXPECT_EQ(fp_a, fp_b);
  EXPECT_EQ(a.frames_judged, b.frames_judged);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_DOUBLE_EQ(a.mean_goodput_bps, b.mean_goodput_bps);
}

TEST(MultiBssSoak, BitIdenticalAcrossThreadCounts) {
  // Budget campaign spanning several timeline repeats: the parallel wave
  // scheduler must reproduce the serial multi-domain campaign bit for
  // bit — report and metric fingerprint — at 1/2/4/8 threads.
  SoakOptions serial_opts;
  serial_opts.threads = 1;
  std::uint64_t probe_fp = 0;
  const SoakReport once =
      run_soak_scoped(multi_bss_scenario(), serial_opts, probe_fp);
  ASSERT_TRUE(once.ok());
  serial_opts.max_frames = once.frames_judged * 4;

  std::uint64_t serial_fp = 0;
  const SoakReport serial =
      run_soak_scoped(multi_bss_scenario(), serial_opts, serial_fp);
  ASSERT_TRUE(serial.ok());
  ASSERT_GE(serial.repeats, 3u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    SoakOptions opts = serial_opts;
    opts.threads = threads;
    std::uint64_t fp = 0;
    const SoakReport parallel =
        run_soak_scoped(multi_bss_scenario(), opts, fp);
    const std::string label = "threads=" + std::to_string(threads);
    EXPECT_EQ(fp, serial_fp) << label;
    EXPECT_EQ(parallel.frames_judged, serial.frames_judged) << label;
    EXPECT_EQ(parallel.steps, serial.steps) << label;
    EXPECT_EQ(parallel.probes, serial.probes) << label;
    EXPECT_EQ(parallel.episodes_run, serial.episodes_run) << label;
    EXPECT_EQ(parallel.repeats, serial.repeats) << label;
    EXPECT_DOUBLE_EQ(parallel.mean_goodput_bps, serial.mean_goodput_bps)
        << label;
    ASSERT_EQ(parallel.episode_summaries.size(),
              serial.episode_summaries.size())
        << label;
    for (std::size_t i = 0; i < serial.episode_summaries.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.episode_summaries[i].goodput_bps,
                       serial.episode_summaries[i].goodput_bps)
          << label << " episode=" << i;
      EXPECT_EQ(parallel.episode_summaries[i].frames_judged,
                serial.episode_summaries[i].frames_judged)
          << label << " episode=" << i;
    }
  }
}

TEST(MultiBssSoak, NonTopologyScenarioUnchangedByTopologyField) {
  // The refactor's no-regression guard: a scenario without a topology
  // section must run exactly as before (single collision domain, legacy
  // probe schedule). Same scenario with a 1-AP topology is *also* a
  // single domain, but a different RNG derivation — both must complete
  // clean.
  Scenario classic = multi_bss_scenario();
  classic.topology.reset();
  SoakOptions opts;
  std::uint64_t fp = 0;
  const SoakReport report = run_soak_scoped(classic, opts, fp);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.frames_judged, 0u);

  Scenario one_ap = multi_bss_scenario();
  one_ap.topology->ap_count = 1;
  const SoakReport single = run_soak_scoped(one_ap, opts, fp);
  EXPECT_TRUE(single.ok());
  EXPECT_GT(single.frames_judged, 0u);
}

}  // namespace
}  // namespace carpool::chaos
