#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsp/complex_vec.hpp"
#include "dsp/fft.hpp"

namespace carpool {
namespace {

CxVec random_vec(std::size_t n, Rng& rng) {
  CxVec v(n);
  for (Cx& x : v) x = Cx{rng.gaussian(), rng.gaussian()};
  return v;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesReferenceDft) {
  Rng rng(GetParam());
  const CxVec input = random_vec(GetParam(), rng);
  const CxVec fast = fft(input);
  const CxVec slow = dft_reference(input);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i].real(), slow[i].real(), 1e-9);
    EXPECT_NEAR(fast[i].imag(), slow[i].imag(), 1e-9);
  }
}

TEST_P(FftSizes, InverseRoundTrip) {
  Rng rng(GetParam() + 100);
  const CxVec input = random_vec(GetParam(), rng);
  const CxVec back = ifft(fft(input));
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(back[i].real(), input[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), input[i].imag(), 1e-9);
  }
}

TEST_P(FftSizes, ParsevalEnergyConservation) {
  Rng rng(GetParam() + 200);
  const CxVec input = random_vec(GetParam(), rng);
  const CxVec spec = fft(input);
  EXPECT_NEAR(energy(spec), energy(input) * static_cast<double>(input.size()),
              1e-6 * energy(input) * static_cast<double>(input.size()));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 128, 256));

TEST(Fft, RejectsNonPowerOfTwo) {
  CxVec v(48);
  EXPECT_THROW(fft_inplace(v), std::invalid_argument);
  CxVec empty;
  EXPECT_THROW(fft_inplace(empty), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CxVec v(64, Cx{});
  v[0] = Cx{1.0, 0.0};
  const CxVec spec = fft(v);
  for (const Cx& s : spec) {
    EXPECT_NEAR(s.real(), 1.0, 1e-12);
    EXPECT_NEAR(s.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kBin = 5;
  CxVec v(kN);
  for (std::size_t n = 0; n < kN; ++n) {
    v[n] = cx_exp(kTwoPi * kBin * n / static_cast<double>(kN));
  }
  const CxVec spec = fft(v);
  for (std::size_t k = 0; k < kN; ++k) {
    const double expected = (k == kBin) ? static_cast<double>(kN) : 0.0;
    EXPECT_NEAR(std::abs(spec[k]), expected, 1e-9);
  }
}

TEST(ComplexVec, MeanPowerAndEnergy) {
  const CxVec v{Cx{1, 0}, Cx{0, 1}, Cx{1, 1}};
  EXPECT_DOUBLE_EQ(energy(v), 4.0);
  EXPECT_DOUBLE_EQ(mean_power(v), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean_power(CxVec{}), 0.0);
}

TEST(ComplexVec, ScaleAndRotate) {
  CxVec v{Cx{1, 0}, Cx{0, 2}};
  scale(v, 2.0);
  EXPECT_DOUBLE_EQ(v[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(v[1].imag(), 4.0);
  rotate(v, kPi / 2);
  EXPECT_NEAR(v[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(v[0].imag(), 2.0, 1e-12);
}

TEST(ComplexVec, DivideHandlesZeroDenominator) {
  const CxVec a{Cx{1, 0}, Cx{2, 0}};
  const CxVec b{Cx{2, 0}, Cx{0, 0}};
  const CxVec q = divide(a, b);
  EXPECT_DOUBLE_EQ(q[0].real(), 0.5);
  EXPECT_EQ(q[1], Cx{});
}

TEST(ComplexVec, WrapAngle) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle(kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(wrap_angle(kTwoPi + 0.1), 0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(-kTwoPi - 0.1), -0.1, 1e-12);
  EXPECT_NEAR(wrap_angle(3 * kPi), kPi, 1e-12);
}

TEST(ComplexVec, EvmZeroForIdentical) {
  Rng rng(3);
  const CxVec v = random_vec(32, rng);
  EXPECT_DOUBLE_EQ(evm(v, v), 0.0);
}

TEST(ComplexVec, EvmScalesWithError) {
  const CxVec ref{Cx{1, 0}, Cx{-1, 0}};
  const CxVec rx{Cx{1.1, 0}, Cx{-0.9, 0}};
  EXPECT_NEAR(evm(rx, ref), 0.1, 1e-12);
}

TEST(ComplexVec, SizeMismatchThrows) {
  const CxVec a(3), b(4);
  EXPECT_THROW((void)multiply(a, b), std::invalid_argument);
  EXPECT_THROW((void)divide(a, b), std::invalid_argument);
  EXPECT_THROW((void)evm(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace carpool
