#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "traffic/frame_sizes.hpp"
#include "traffic/generators.hpp"
#include "traffic/trace_synth.hpp"

namespace carpool::traffic {
namespace {

TEST(FrameSizes, SigcommMatchesPaperCdf) {
  // Fig. 1(b): more than 50% of SIGCOMM downlink frames are < 300 B.
  const FrameSizeDistribution dist(TraceKind::kSigcomm);
  EXPECT_GT(dist.cdf(300), 0.5);
  EXPECT_LT(dist.cdf(300), 0.75);
  EXPECT_DOUBLE_EQ(dist.cdf(1500), 1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0), 0.0);
}

TEST(FrameSizes, LibraryMatchesPaperCdf) {
  // Fig. 1(b): more than 90% of library downlink frames are < 300 B.
  const FrameSizeDistribution dist(TraceKind::kLibrary);
  EXPECT_GT(dist.cdf(300), 0.9);
}

TEST(FrameSizes, SamplesMatchCdf) {
  Rng rng(3);
  for (const TraceKind kind : {TraceKind::kSigcomm, TraceKind::kLibrary}) {
    const FrameSizeDistribution dist(kind);
    SampleSet samples;
    for (int i = 0; i < 20000; ++i) {
      const std::size_t s = dist.sample(rng);
      EXPECT_GE(s, 40u);
      EXPECT_LE(s, 1500u);
      samples.add(static_cast<double>(s));
    }
    for (const std::size_t x : {120u, 300u, 1000u}) {
      EXPECT_NEAR(samples.cdf(static_cast<double>(x)), dist.cdf(x), 0.02);
    }
  }
}

TEST(Voip, PeakRateMatches96Kbps) {
  // During a talk spurt: 120 B / 10 ms = 96 kbit/s.
  const VoipParams params;
  EXPECT_NEAR(static_cast<double>(params.frame_bytes) * 8.0 /
                  params.frame_interval,
              96e3, 1.0);
}

TEST(Voip, OnOffStructure) {
  Rng rng(5);
  auto flow = make_voip_flow(1);
  double now = 0.0;
  std::vector<double> gaps;
  double prev = -1.0;
  for (int i = 0; i < 5000; ++i) {
    const auto [t, size] = flow.next(now, rng);
    EXPECT_EQ(size, 120u);
    if (prev >= 0.0) gaps.push_back(t - prev);
    prev = t;
    now = t;
  }
  // Most gaps are the 10 ms frame interval; some are long silences.
  std::size_t short_gaps = 0, long_gaps = 0;
  for (const double g : gaps) {
    if (g < 0.011) ++short_gaps;
    if (g > 0.1) ++long_gaps;
  }
  EXPECT_GT(short_gaps, gaps.size() * 6 / 10);
  EXPECT_GT(long_gaps, 10u);
}

TEST(Voip, AverageRateBelowPeak) {
  // Brady duty cycle ~ 1.0/(1.0+1.35) = 0.426 -> ~41 kbit/s average.
  Rng rng(6);
  auto flow = make_voip_flow(1);
  double now = 0.0;
  double bytes = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto [t, size] = flow.next(now, rng);
    bytes += static_cast<double>(size);
    now = t;
  }
  const double rate = bytes * 8.0 / now;
  EXPECT_GT(rate, 25e3);
  EXPECT_LT(rate, 60e3);
}

TEST(Poisson, MeanIntervalRespected) {
  Rng rng(7);
  auto flow = make_poisson_flow(1, 0.047, TraceKind::kSigcomm, true);
  EXPECT_EQ(flow.src, 1u);
  EXPECT_EQ(flow.dst, mac::kApNode);
  double now = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto [t, size] = flow.next(now, rng);
    EXPECT_GT(t, now);
    now = t;
  }
  EXPECT_NEAR(now / n, 0.047, 0.002);
}

TEST(Poisson, RejectsBadInterval) {
  EXPECT_THROW((void)make_poisson_flow(1, 0.0, TraceKind::kSigcomm, true),
               std::invalid_argument);
}

TEST(SigcommBackground, TwoFlowsPerSta) {
  const auto flows = make_sigcomm_background(3);
  ASSERT_EQ(flows.size(), 2u);
  for (const auto& f : flows) {
    EXPECT_EQ(f.src, 3u);
    EXPECT_EQ(f.dst, mac::kApNode);
  }
}

TEST(Cbr, FixedSizeAndInterval) {
  Rng rng(8);
  auto flow = make_cbr_flow(2, 800, 0.02);
  double now = 0.0;
  for (int i = 1; i <= 100; ++i) {
    const auto [t, size] = flow.next(now, rng);
    EXPECT_EQ(size, 800u);
    EXPECT_NEAR(t, 0.02 * i, 1e-9);
    now = t;
  }
}

TEST(TraceSynth, MeanActiveStasNearPaper) {
  // Paper Fig. 1(a): the average number of active STAs per AP is 7.63.
  TraceSynthConfig cfg;
  const SyntheticTrace trace = synthesize_trace(cfg);
  ASSERT_EQ(trace.active_stas_per_second.size(), 300u);
  EXPECT_GT(trace.mean_active_stas, 4.0);
  EXPECT_LT(trace.mean_active_stas, 12.0);
}

TEST(TraceSynth, DownlinkRatioMatchesTarget) {
  for (const double target : {0.80, 0.834, 0.892}) {
    TraceSynthConfig cfg;
    cfg.downlink_ratio = target;
    cfg.seed = static_cast<std::uint64_t>(target * 1000);
    const SyntheticTrace trace = synthesize_trace(cfg);
    EXPECT_NEAR(trace.downlink_ratio(), target, 0.02);
  }
}

TEST(TraceSynth, StaPopulationInRange) {
  TraceSynthConfig cfg;
  const SyntheticTrace trace = synthesize_trace(cfg);
  // 15 APs x 6..28 STAs; paper reports ~164 on average.
  EXPECT_GE(trace.total_stas, cfg.num_aps * cfg.stas_per_ap_min);
  EXPECT_LE(trace.total_stas, cfg.num_aps * cfg.stas_per_ap_max);
}

TEST(TraceSynth, ActivityVariesOverTime) {
  TraceSynthConfig cfg;
  const SyntheticTrace trace = synthesize_trace(cfg);
  std::size_t lo = 1000, hi = 0;
  for (const std::size_t a : trace.active_stas_per_second) {
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  EXPECT_GT(hi, lo);  // Fig. 1(a) shows fluctuation between 2 and 14
}

}  // namespace
}  // namespace carpool::traffic
