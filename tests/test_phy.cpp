#include <gtest/gtest.h>

#include <cmath>

#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "phy/constellation.hpp"
#include "phy/equalizer.hpp"
#include "phy/frame.hpp"
#include "phy/mcs.hpp"
#include "phy/ofdm.hpp"
#include "phy/preamble.hpp"
#include "phy/sig.hpp"
#include "phy/sync.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

class ConstellationParam : public ::testing::TestWithParam<Modulation> {};

TEST_P(ConstellationParam, MapDemapRoundTrip) {
  const Constellation& con = constellation(GetParam());
  Rng rng(17);
  for (int t = 0; t < 200; ++t) {
    Bits bits(con.bits_per_point());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    EXPECT_EQ(con.demap_hard(con.map(bits)), bits);
  }
}

TEST_P(ConstellationParam, UnitAveragePower) {
  const Constellation& con = constellation(GetParam());
  double power = 0.0;
  for (const Cx& p : con.points()) power += std::norm(p);
  EXPECT_NEAR(power / static_cast<double>(con.size()), 1.0, 1e-12);
}

TEST_P(ConstellationParam, GrayCodingNeighborsDifferByOneBit) {
  // Nearest distinct neighbours of every point differ in exactly one bit.
  const Constellation& con = constellation(GetParam());
  const auto points = con.points();
  for (std::size_t a = 0; a < points.size(); ++a) {
    double min_d = 1e18;
    for (std::size_t b = 0; b < points.size(); ++b) {
      if (a != b) min_d = std::min(min_d, std::abs(points[a] - points[b]));
    }
    for (std::size_t b = 0; b < points.size(); ++b) {
      if (a == b || std::abs(points[a] - points[b]) > min_d * 1.001) continue;
      EXPECT_EQ(std::popcount(a ^ b), 1)
          << modulation_name(GetParam()) << " labels " << a << "," << b;
    }
  }
}

TEST_P(ConstellationParam, SoftDemapSignsMatchHardDecision) {
  const Constellation& con = constellation(GetParam());
  Rng rng(18);
  for (int t = 0; t < 100; ++t) {
    Bits bits(con.bits_per_point());
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const Cx point = con.map(bits);
    SoftBits soft;
    con.demap_soft(point, 1.0, soft);
    ASSERT_EQ(soft.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(soft[i] > 0.0, bits[i] == 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ConstellationParam,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Mcs, TableConsistency) {
  for (const Mcs& m : mcs_table()) {
    EXPECT_EQ(m.n_bpsc, bits_per_symbol(m.modulation));
    EXPECT_EQ(m.n_cbps, m.n_bpsc * kNumDataSubcarriers);
    EXPECT_NEAR(static_cast<double>(m.n_dbps),
                static_cast<double>(m.n_cbps) * rate_value(m.code_rate),
                1e-9);
    // data rate = n_dbps / 4us.
    EXPECT_NEAR(m.data_rate_bps, static_cast<double>(m.n_dbps) / 4e-6, 1.0);
  }
}

TEST(Mcs, NumDataSymbols) {
  // 100 bytes at 6M (24 dbps): (16+800+6)/24 = 34.25 -> 35 symbols.
  EXPECT_EQ(num_data_symbols(mcs(0), 100), 35u);
  // 1500 bytes at 54M (216 dbps): (16+12000+6)/216 = 55.7 -> 56.
  EXPECT_EQ(num_data_symbols(mcs(7), 1500), 56u);
}

TEST(Ofdm, SymbolRoundTripCleanChannel) {
  Rng rng(21);
  const Constellation& con = constellation(Modulation::kQam64);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) {
    d = con.points()[rng.uniform_int(con.size())];
  }
  const CxVec symbol = assemble_symbol(data, 3);
  const CxVec bins = extract_symbol(symbol);
  const CxVec got = gather_data(bins);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(got[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(got[i].imag(), data[i].imag(), 1e-9);
  }
}

TEST(Ofdm, SymbolHasUnitMeanPower) {
  Rng rng(22);
  const Constellation& con = constellation(Modulation::kQpsk);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) d = con.points()[rng.uniform_int(con.size())];
  const CxVec symbol = assemble_symbol(data, 0);
  EXPECT_NEAR(mean_power(symbol), 1.0, 0.35);
}

TEST(Ofdm, PhaseOffsetRotatesAllSubcarriers) {
  Rng rng(23);
  const Constellation& con = constellation(Modulation::kQpsk);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) d = con.points()[rng.uniform_int(con.size())];
  const double theta = kPi / 3;
  const CxVec plain = extract_symbol(assemble_symbol(data, 2, 0.0));
  const CxVec rotated = extract_symbol(assemble_symbol(data, 2, theta));
  for (const std::size_t bin : data_bins()) {
    EXPECT_NEAR(wrap_angle(std::arg(rotated[bin]) - std::arg(plain[bin])),
                theta, 1e-9);
  }
  for (const std::size_t bin : pilot_bins()) {
    EXPECT_NEAR(wrap_angle(std::arg(rotated[bin]) - std::arg(plain[bin])),
                theta, 1e-9);
  }
}

TEST(Ofdm, PilotPolarityPeriodic) {
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_EQ(pilot_polarity(n), pilot_polarity(n + 127));
  }
  // First elements of the Clause 17.3.5.9 sequence: 1 1 1 1 -1 -1 -1 1.
  const double expected[] = {1, 1, 1, 1, -1, -1, -1, 1};
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_DOUBLE_EQ(pilot_polarity(n), expected[n]);
  }
}

TEST(Preamble, LtfChannelEstimateIdentityChannel) {
  const CxVec ltf = ltf_waveform();
  const CxVec h = estimate_channel_from_ltf(ltf);
  for (const std::size_t bin : data_bins()) {
    EXPECT_NEAR(std::abs(h[bin]), 1.0, 1e-9);
    EXPECT_NEAR(std::arg(h[bin]), 0.0, 1e-9);
  }
}

TEST(Preamble, CfoEstimationAccuracy) {
  // Apply a known CFO and check both estimators recover it.
  const double cfo = 0.01;  // radians per sample (~31.8 kHz at 20 Msps)
  CxVec pre = preamble_waveform();
  double phase = 0.0;
  for (Cx& s : pre) {
    s *= cx_exp(phase);
    phase += cfo;
  }
  const double coarse =
      estimate_coarse_cfo(std::span<const Cx>(pre).first(kStfLen));
  EXPECT_NEAR(coarse, cfo, 5e-4);
  apply_cfo_correction(pre, coarse);
  const double fine = estimate_fine_cfo(
      std::span<const Cx>(pre).subspan(kStfLen, kLtfLen));
  EXPECT_NEAR(coarse + fine, cfo, 5e-5);
}

TEST(Preamble, WaveformLengths) {
  EXPECT_EQ(stf_waveform().size(), kStfLen);
  EXPECT_EQ(ltf_waveform().size(), kLtfLen);
  EXPECT_EQ(preamble_waveform().size(), kPreambleLen);
}

TEST(Preamble, StfIsPeriodic16) {
  const CxVec stf = stf_waveform();
  for (std::size_t n = 0; n + 16 < stf.size(); ++n) {
    EXPECT_NEAR(std::abs(stf[n] - stf[n + 16]), 0.0, 1e-9);
  }
}

TEST(Equalizer, RecoversInjectedPhase) {
  Rng rng(31);
  const Constellation& con = constellation(Modulation::kQpsk);
  CxVec data(kNumDataSubcarriers);
  for (Cx& d : data) d = con.points()[rng.uniform_int(con.size())];
  const double injected = kPi / 4;
  const CxVec bins = extract_symbol(assemble_symbol(data, 5, injected));
  const CxVec h(kFftSize, Cx{1.0, 0.0});
  const SymbolEqualization eq = equalize_symbol(bins, h, 5);
  EXPECT_NEAR(eq.phase_offset, injected, 1e-9);
  // Data fully compensated.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(eq.data[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(eq.data[i].imag(), data[i].imag(), 1e-9);
  }
}

TEST(Sig, EncodeDecodeRoundTrip) {
  for (std::size_t idx = 0; idx < 8; ++idx) {
    for (const std::size_t len : {1u, 100u, 1500u, 4095u}) {
      const SigInfo info{idx, len};
      const CxVec points = encode_sig(info);
      const std::vector<double> gains(48, 1.0);
      const auto decoded = decode_sig(points, gains);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->mcs_index, idx);
      EXPECT_EQ(decoded->length_bytes, len);
    }
  }
}

TEST(Sig, RejectsInvalidLength) {
  EXPECT_THROW((void)encode_sig(SigInfo{0, 0}), std::invalid_argument);
  EXPECT_THROW((void)encode_sig(SigInfo{0, 4096}), std::invalid_argument);
  EXPECT_THROW((void)encode_sig(SigInfo{9, 100}), std::invalid_argument);
}

TEST(Fcs, AppendAndCheck) {
  Rng rng(41);
  const Bytes body = random_psdu(64, rng);
  Bytes framed = append_fcs(body);
  EXPECT_EQ(framed.size(), body.size() + 4);
  EXPECT_TRUE(check_fcs(framed));
  framed[10] ^= 0x01;
  EXPECT_FALSE(check_fcs(framed));
  EXPECT_FALSE(check_fcs(Bytes{1, 2, 3}));
}

class LegacyLoopback : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LegacyLoopback, PerfectChannelRoundTrip) {
  Rng rng(GetParam() + 50);
  const Mcs& m = mcs(GetParam());
  const Bytes psdu = append_fcs(random_psdu(300, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, m);
  const LegacyReceiver rx;
  const LegacyRxResult result = rx.receive(wave);
  ASSERT_TRUE(result.sig_ok);
  EXPECT_EQ(result.sig.mcs_index, GetParam());
  EXPECT_EQ(result.sig.length_bytes, psdu.size());
  ASSERT_TRUE(result.decoded);
  EXPECT_TRUE(result.fcs_ok);
  EXPECT_EQ(result.psdu, psdu);
}

TEST_P(LegacyLoopback, HighSnrFadingRoundTrip) {
  Rng rng(GetParam() + 60);
  const Mcs& m = mcs(GetParam());
  const Bytes psdu = append_fcs(random_psdu(200, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, m);

  FadingConfig cfg;
  cfg.seed = GetParam() + 7;
  cfg.snr_db = 35.0;
  cfg.coherence_time = 50e-3;
  cfg.cfo_hz = 5e3;
  FadingChannel channel(cfg);
  const CxVec rx_wave = channel.transmit(wave);

  const LegacyReceiver rx;
  const LegacyRxResult result = rx.receive(rx_wave);
  ASSERT_TRUE(result.sig_ok);
  ASSERT_TRUE(result.decoded);
  EXPECT_TRUE(result.fcs_ok) << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllMcs, LegacyLoopback,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(LegacyReceiver, LowSnrFailsGracefully) {
  Rng rng(71);
  const Bytes psdu = append_fcs(random_psdu(500, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, mcs(7));
  FadingConfig cfg;
  cfg.seed = 3;
  cfg.snr_db = -5.0;
  FadingChannel channel(cfg);
  const LegacyReceiver rx;
  const LegacyRxResult result = rx.receive(channel.transmit(wave));
  // At -5 dB SNR with 64-QAM the frame must not pass the FCS.
  EXPECT_FALSE(result.fcs_ok);
}

TEST(LegacyReceiver, TooShortWaveform) {
  const LegacyReceiver rx;
  const CxVec wave(100, Cx{});
  const LegacyRxResult result = rx.receive(wave);
  EXPECT_FALSE(result.sig_ok);
  EXPECT_FALSE(result.decoded);
}

TEST(Sync, DetectsFrameAtKnownOffset) {
  Rng rng(81);
  const Bytes psdu = append_fcs(random_psdu(64, rng));
  const LegacyTransmitter tx;
  const CxVec wave = tx.build(psdu, mcs(2));

  CxVec padded(500, Cx{});
  add_awgn(padded, 1e-4, rng);
  padded.insert(padded.end(), wave.begin(), wave.end());

  const auto sync = detect_frame(padded);
  ASSERT_TRUE(sync.has_value());
  EXPECT_NEAR(static_cast<double>(sync->frame_start), 500.0, 24.0);
}

TEST(Sync, NoFalseDetectionOnNoise) {
  Rng rng(82);
  CxVec noise(4000, Cx{});
  add_awgn(noise, 1.0, rng);
  EXPECT_FALSE(detect_frame(noise).has_value());
}

TEST(DataPath, BuildDataBitsLengthAndPadding) {
  const Mcs& m = mcs(0);  // 24 dbps
  const Bytes psdu(10, 0xFF);
  const Bits bits = build_data_bits(psdu, m);
  EXPECT_EQ(bits.size(), num_data_symbols(m, 10) * m.n_dbps);
}

TEST(DataPath, CodedStreamIsWholeSymbols) {
  for (const Mcs& m : mcs_table()) {
    const Bytes psdu(57, 0xA5);
    const Bits data = build_data_bits(psdu, m);
    const Bits coded = code_data_bits(data, m);
    EXPECT_EQ(coded.size() % m.n_cbps, 0u) << m.name;
  }
}

TEST(DataPath, HardDemapMatchesTxCodedBits) {
  // demap_symbol_hard must invert modulate_coded exactly (clean points).
  Rng rng(91);
  for (const Mcs& m : mcs_table()) {
    Bits coded(m.n_cbps * 2);
    for (auto& b : coded) b = static_cast<std::uint8_t>(rng.uniform_int(2));
    const auto symbols = modulate_coded(coded, m);
    ASSERT_EQ(symbols.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      const Bits back = demap_symbol_hard(symbols[s], m);
      const Bits expect(coded.begin() + static_cast<long>(s * m.n_cbps),
                        coded.begin() + static_cast<long>((s + 1) * m.n_cbps));
      EXPECT_EQ(back, expect) << m.name;
    }
  }
}

}  // namespace
}  // namespace carpool
