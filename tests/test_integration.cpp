// Cross-module integration and property tests: full TX -> channel -> RX
// sweeps, failure injection, and invariants that must hold across random
// configurations.

#include <gtest/gtest.h>

#include <algorithm>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"
#include "mac/simulator.hpp"
#include "phy/frame.hpp"
#include "traffic/generators.hpp"

namespace carpool {
namespace {

Bytes random_psdu(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

// ------------------------------------------------- randomized PHY sweeps

struct RandomFrameCase {
  std::uint64_t seed;
};

class RandomCarpoolFrames : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCarpoolFrames, EveryReceiverGetsItsPayloadCleanChannel) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.uniform_int(kMaxReceivers);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < n; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(
            static_cast<std::uint32_t>(rng.uniform_int(1 << 16))),
        append_fcs(random_psdu(1 + rng.uniform_int(1200), rng)),
        rng.uniform_int(8)});
  }
  // Distinct receivers required for per-receiver assertions.
  std::sort(subframes.begin(), subframes.end(),
            [](const auto& a, const auto& b) {
              return a.receiver < b.receiver;
            });
  for (std::size_t i = 1; i < subframes.size(); ++i) {
    if (subframes[i].receiver == subframes[i - 1].receiver) return;  // skip
  }
  std::shuffle(subframes.begin(), subframes.end(), rng);

  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  EXPECT_EQ(wave.size(), kPreambleLen + CarpoolTransmitter::frame_symbols(
                                            subframes) *
                                            kSymbolLen);

  for (std::size_t i = 0; i < subframes.size(); ++i) {
    CarpoolRxConfig cfg;
    cfg.self = subframes[i].receiver;
    const CarpoolReceiver rx(cfg);
    const auto result = rx.receive(wave);
    bool ok = false;
    for (const auto& sub : result.subframes) {
      if (sub.index == i) {
        ok = sub.fcs_ok && sub.psdu == subframes[i].psdu;
      }
    }
    EXPECT_TRUE(ok) << "seed " << GetParam() << " subframe " << i << "/"
                    << subframes.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCarpoolFrames,
                         ::testing::Range<std::uint64_t>(1, 25));

class FadingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FadingSweep, GoodSnrFramesDecodeThroughRandomChannels) {
  Rng rng(GetParam() * 31 + 5);
  const std::size_t n = 1 + rng.uniform_int(4);
  std::vector<SubframeSpec> subframes;
  for (std::size_t i = 0; i < n; ++i) {
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(random_psdu(50 + rng.uniform_int(400), rng)),
        rng.uniform_int(6)});  // up to QAM16-3/4 at 30+ dB
  }
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  FadingConfig cfg;
  cfg.seed = GetParam() * 7 + 1;
  cfg.snr_db = 32.0 + rng.uniform(0.0, 8.0);
  cfg.coherence_time = rng.uniform(5e-3, 50e-3);
  cfg.cfo_hz = rng.uniform(-10e3, 10e3);
  cfg.num_taps = 1 + rng.uniform_int(4);
  cfg.rician_los = true;
  FadingChannel channel(cfg);
  const CxVec rx_wave = channel.transmit(wave);

  std::size_t decoded = 0;
  for (std::size_t i = 0; i < subframes.size(); ++i) {
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = subframes[i].receiver;
    const CarpoolReceiver rx(rx_cfg);
    for (const auto& sub : rx.receive(rx_wave).subframes) {
      if (sub.index == i && sub.fcs_ok) ++decoded;
    }
  }
  // At >=32 dB LOS nearly everything must decode.
  EXPECT_GE(decoded + 1, subframes.size()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FadingSweep,
                         ::testing::Range<std::uint64_t>(1, 20));

// ------------------------------------------------------ failure injection

TEST(FailureInjection, TruncatedWaveformsNeverCrash) {
  Rng rng(100);
  std::vector<SubframeSpec> subframes{
      SubframeSpec{MacAddress::for_station(1),
                   append_fcs(random_psdu(300, rng)), 4},
      SubframeSpec{MacAddress::for_station(2),
                   append_fcs(random_psdu(300, rng)), 4}};
  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);

  CarpoolRxConfig cfg;
  cfg.self = MacAddress::for_station(2);
  const CarpoolReceiver rx(cfg);
  for (std::size_t len = 0; len <= wave.size(); len += 97) {
    const auto result =
        rx.receive(std::span<const Cx>(wave.data(), len));
    // Truncation before subframe 2 ends must not produce subframe 2.
    if (len < wave.size()) {
      for (const auto& sub : result.subframes) {
        EXPECT_LT(sub.index, 2u);
      }
    }
  }
}

TEST(FailureInjection, CorruptedAhdrDropsGracefully) {
  Rng rng(101);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1), append_fcs(random_psdu(200, rng)), 4}};
  const CarpoolTransmitter tx;
  CxVec wave = tx.build(subframes);
  // Obliterate the A-HDR symbols.
  for (std::size_t i = kPreambleLen; i < kPreambleLen + 2 * kSymbolLen; ++i) {
    wave[i] = Cx{rng.gaussian(), rng.gaussian()};
  }
  CarpoolRxConfig cfg;
  cfg.self = subframes[0].receiver;
  const CarpoolReceiver rx(cfg);
  const auto result = rx.receive(wave);  // must not crash or mis-deliver
  for (const auto& sub : result.subframes) {
    // If a Bloom false positive led here, FCS still protects the payload.
    EXPECT_TRUE(sub.fcs_ok || !sub.decoded || sub.psdu != subframes[0].psdu);
  }
}

TEST(FailureInjection, MidFrameBurstCorruptsOnlyTail) {
  Rng rng(102);
  std::vector<SubframeSpec> subframes{
      SubframeSpec{MacAddress::for_station(1),
                   append_fcs(random_psdu(400, rng)), 4},
      SubframeSpec{MacAddress::for_station(2),
                   append_fcs(random_psdu(400, rng)), 4}};
  const CarpoolTransmitter tx;
  CxVec wave = tx.build(subframes);
  // Noise burst over the SECOND subframe only.
  const std::size_t sub1_syms = 1 + num_data_symbols(mcs(4), 404);
  const std::size_t burst_start =
      kPreambleLen + (2 + sub1_syms) * kSymbolLen;
  for (std::size_t i = burst_start; i < wave.size(); ++i) {
    wave[i] += 2.0 * Cx{rng.gaussian(), rng.gaussian()};
  }

  CarpoolRxConfig cfg1;
  cfg1.self = subframes[0].receiver;
  const auto r1 = CarpoolReceiver(cfg1).receive(wave);
  bool first_ok = false;
  for (const auto& sub : r1.subframes) {
    if (sub.index == 0) first_ok = sub.fcs_ok;
  }
  EXPECT_TRUE(first_ok);  // first subframe untouched

  CarpoolRxConfig cfg2;
  cfg2.self = subframes[1].receiver;
  const auto r2 = CarpoolReceiver(cfg2).receive(wave);
  for (const auto& sub : r2.subframes) {
    if (sub.index == 1 && sub.decoded) {
      EXPECT_FALSE(sub.fcs_ok);  // burst destroyed it, FCS catches it
    }
  }
}

TEST(FailureInjection, MismatchedCrcSchemeDegradesToNoPilots) {
  // RX configured for a different side-channel scheme than TX: CRC checks
  // fail, so no RTE updates happen — but data still decodes (the side
  // channel never hurts data, Sec. 5.2).
  Rng rng(103);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1), append_fcs(random_psdu(300, rng)), 2}};
  CarpoolFrameConfig txcfg;
  txcfg.crc_scheme = SymbolCrcScheme{PhaseMod::kTwoBit, 1};
  const CarpoolTransmitter tx(txcfg);
  const CxVec wave = tx.build(subframes);

  CarpoolRxConfig rxcfg;
  rxcfg.self = subframes[0].receiver;
  rxcfg.crc_scheme = SymbolCrcScheme{PhaseMod::kOneBit, 2};  // wrong
  const CarpoolReceiver rx(rxcfg);
  const auto result = rx.receive(wave);
  ASSERT_FALSE(result.subframes.empty());
  const DecodedSubframe& sub = result.subframes.front();
  EXPECT_TRUE(sub.fcs_ok);  // clean channel: data fine
  // Wrong-scheme CRC verdicts only match by accident (~1/8 for CRC-3), so
  // far fewer symbols serve as pilots than with the matched scheme — and
  // on a clean channel those accidental pilots are still correct data, so
  // nothing breaks.
  EXPECT_LT(sub.side_bits.size(), 200u);
  EXPECT_LT(sub.rte_updates, sub.raw_symbol_bits.size() / 2);
}

// ------------------------------------------------------- MAC invariants

TEST(MacInvariants, ConservationOfFrames) {
  using namespace mac;
  SimConfig cfg;
  cfg.scheme = Scheme::kCarpool;
  cfg.num_stas = 12;
  cfg.duration = 5.0;
  cfg.seed = 5;
  cfg.delivery_deadline = 0.05;
  Simulator sim(cfg);
  std::uint64_t offered_estimate = 0;
  for (NodeId sta = 1; sta <= 12; ++sta) {
    sim.add_flow(traffic::make_cbr_flow(sta, 500, 0.004));
    offered_estimate += static_cast<std::uint64_t>(5.0 / 0.004);
  }
  const SimResult r = sim.run();
  // delivered + dropped <= offered (frames still queued at the end are
  // neither).
  EXPECT_LE(r.dl_frames_delivered + r.dl_frames_dropped, offered_estimate);
  EXPECT_GT(r.dl_frames_delivered, 0u);
}

TEST(MacInvariants, GoodputNeverExceedsOffered) {
  using namespace mac;
  for (const Scheme scheme :
       {Scheme::kDcf80211, Scheme::kAmpdu, Scheme::kCarpool,
        Scheme::kMuAggregation, Scheme::kWiFox}) {
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.num_stas = 8;
    cfg.duration = 5.0;
    cfg.seed = 7;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 8; ++sta) {
      sim.add_flow(traffic::make_cbr_flow(sta, 1000, 0.01));
    }
    const SimResult r = sim.run();
    const double offered = 8 * 1000 * 8 / 0.01;  // 6.4 Mb/s
    EXPECT_LE(r.downlink_goodput_bps, offered * 1.02)
        << scheme_name(scheme);
  }
}

TEST(MacInvariants, DelaysNonNegativeAndOrdered) {
  using namespace mac;
  SimConfig cfg;
  cfg.scheme = Scheme::kAmpdu;
  cfg.num_stas = 20;
  cfg.duration = 5.0;
  cfg.seed = 9;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= 20; ++sta) {
    for (auto& f :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(f));
    }
  }
  const SimResult r = sim.run();
  EXPECT_GE(r.mean_delay_s, 0.0);
  EXPECT_LE(r.mean_delay_s, r.p95_delay_s + 1e-12);
  EXPECT_LE(r.p95_delay_s, r.max_delay_s + 1e-12);
}

TEST(MacInvariants, MoreReceiversNeverHurtsCarpoolGoodput) {
  using namespace mac;
  double prev = 0.0;
  for (const std::size_t max_rx : {1u, 4u, 8u}) {
    SimConfig cfg;
    cfg.scheme = Scheme::kCarpool;
    cfg.num_stas = 30;
    cfg.duration = 6.0;
    cfg.seed = 13;
    cfg.aggregation.max_receivers = max_rx;
    Simulator sim(cfg);
    for (NodeId sta = 1; sta <= 30; ++sta) {
      for (auto& f :
           traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
        sim.add_flow(std::move(f));
      }
    }
    const SimResult r = sim.run();
    EXPECT_GE(r.downlink_goodput_bps, prev * 0.9)
        << "max_receivers=" << max_rx;
    prev = std::max(prev, r.downlink_goodput_bps);
  }
}

// -------------------------------------------- side channel x RTE matrix

class SchemeMatrix
    : public ::testing::TestWithParam<std::tuple<PhaseMod, std::size_t>> {};

TEST_P(SchemeMatrix, RoundTripAllSchemes) {
  const auto [mod, group] = GetParam();
  Rng rng(static_cast<std::uint64_t>(group) * 100 + 7);
  std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1), append_fcs(random_psdu(600, rng)), 5}};
  CarpoolFrameConfig txcfg;
  txcfg.crc_scheme = SymbolCrcScheme{mod, group};
  const CarpoolTransmitter tx(txcfg);
  const CxVec wave = tx.build(subframes);

  FadingConfig ch;
  ch.seed = group * 3 + (mod == PhaseMod::kOneBit ? 0 : 1);
  ch.snr_db = 30.0;
  ch.rician_los = true;
  FadingChannel channel(ch);

  CarpoolRxConfig rxcfg;
  rxcfg.self = subframes[0].receiver;
  rxcfg.crc_scheme = txcfg.crc_scheme;
  const CarpoolReceiver rx(rxcfg);
  const auto result = rx.receive(channel.transmit(wave));
  ASSERT_FALSE(result.subframes.empty());
  EXPECT_TRUE(result.subframes.front().fcs_ok);
  EXPECT_GT(result.subframes.front().rte_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeMatrix,
    ::testing::Combine(::testing::Values(PhaseMod::kOneBit,
                                         PhaseMod::kTwoBit),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace carpool
