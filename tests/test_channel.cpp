#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "channel/awgn.hpp"
#include "channel/fading.hpp"
#include "channel/pathloss.hpp"
#include "channel/shadowing.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace carpool {
namespace {

TEST(Awgn, NoisePowerMatchesTarget) {
  Rng rng(1);
  CxVec samples(200000, Cx{});
  add_awgn(samples, 0.25, rng);
  EXPECT_NEAR(mean_power(samples), 0.25, 0.01);
}

TEST(Awgn, ZeroPowerIsNoOp) {
  Rng rng(2);
  CxVec samples(100, Cx{1.0, 1.0});
  add_awgn(samples, 0.0, rng);
  for (const Cx& s : samples) EXPECT_EQ(s, (Cx{1.0, 1.0}));
}

TEST(Awgn, NegativePowerThrows) {
  Rng rng(3);
  CxVec samples(4);
  EXPECT_THROW(add_awgn(samples, -1.0, rng), std::invalid_argument);
}

TEST(Awgn, SnrHelper) {
  EXPECT_NEAR(noise_power_for_snr(1.0, 20.0), 0.01, 1e-12);
  EXPECT_NEAR(noise_power_for_snr(2.0, 3.0), 1.0024, 1e-3);
}

TEST(Fading, UnitAverageGain) {
  // Across many independent realisations, E[sum |h_l|^2] = 1.
  RunningStats gains;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    FadingConfig cfg;
    cfg.seed = seed;
    cfg.snr_db = 200.0;  // effectively noise-free
    FadingChannel ch(cfg);
    const CxVec h = ch.frequency_response(64);
    gains.add(mean_power(h));
  }
  EXPECT_NEAR(gains.mean(), 1.0, 0.1);
}

TEST(Fading, DeterministicPerSeed) {
  FadingConfig cfg;
  cfg.seed = 77;
  FadingChannel a(cfg), b(cfg);
  const CxVec tx(100, Cx{1.0, 0.0});
  const CxVec ra = a.transmit(tx);
  const CxVec rb = b.transmit(tx);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i], rb[i]);
}

TEST(Fading, SnrControlsNoise) {
  // Compare received error power against a noise-free run.
  const CxVec tx(20000, Cx{1.0, 0.0});
  FadingConfig clean_cfg;
  clean_cfg.seed = 5;
  clean_cfg.snr_db = 300.0;
  FadingChannel clean(clean_cfg);
  const CxVec ref = clean.transmit(tx);

  for (const double snr_db : {10.0, 20.0}) {
    FadingConfig cfg;
    cfg.seed = 5;  // same fading realisation
    cfg.snr_db = snr_db;
    FadingChannel noisy(cfg);
    const CxVec rx = noisy.transmit(tx);
    double err = 0.0;
    for (std::size_t i = 0; i < rx.size(); ++i) err += std::norm(rx[i] - ref[i]);
    err /= static_cast<double>(rx.size());
    EXPECT_NEAR(err, db_to_linear(-snr_db), db_to_linear(-snr_db) * 0.15);
  }
}

TEST(Fading, ChannelVariesFasterWithShorterCoherence) {
  // Measure decorrelation of H over 2 ms for two coherence times.
  auto decorrelation = [](double coherence) {
    FadingConfig cfg;
    cfg.seed = 9;
    cfg.coherence_time = coherence;
    FadingChannel ch(cfg);
    const CxVec h0 = ch.frequency_response(64);
    ch.idle(2e-3);
    const CxVec h1 = ch.frequency_response(64);
    double num = 0.0, den = 0.0;
    for (std::size_t k = 0; k < 64; ++k) {
      num += std::norm(h1[k] - h0[k]);
      den += std::norm(h0[k]);
    }
    return num / den;
  };
  const double fast = decorrelation(0.5e-3);
  const double slow = decorrelation(50e-3);
  EXPECT_GT(fast, 4.0 * slow);
}

TEST(Fading, FlatWhenSingleTap) {
  FadingConfig cfg;
  cfg.seed = 11;
  cfg.num_taps = 1;
  FadingChannel ch(cfg);
  const CxVec h = ch.frequency_response(64);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_NEAR(std::abs(h[k]), std::abs(h[0]), 1e-9);
  }
}

TEST(Fading, MultipathIsFrequencySelective) {
  FadingConfig cfg;
  cfg.seed = 12;
  cfg.num_taps = 6;
  FadingChannel ch(cfg);
  const CxVec h = ch.frequency_response(64);
  double min_mag = 1e9, max_mag = 0.0;
  for (const Cx& hk : h) {
    min_mag = std::min(min_mag, std::abs(hk));
    max_mag = std::max(max_mag, std::abs(hk));
  }
  EXPECT_GT(max_mag / min_mag, 1.5);
}

TEST(Fading, CfoRotatesPhase) {
  FadingConfig cfg;
  cfg.seed = 13;
  cfg.num_taps = 1;
  cfg.coherence_time = 1e3;  // effectively static taps
  cfg.snr_db = 300.0;
  cfg.cfo_hz = 10e3;
  FadingChannel ch(cfg);
  const CxVec tx(2000, Cx{1.0, 0.0});
  const CxVec rx = ch.transmit(tx);
  // Phase advance over 600 samples at 10 kHz / 20 MHz (stays away from
  // the +-pi wrap boundary).
  const double expected = kTwoPi * 10e3 * 600.0 / 20e6;
  const double measured =
      wrap_angle(std::arg(rx[1100]) - std::arg(rx[500]));
  EXPECT_NEAR(measured, wrap_angle(expected), 0.05);
}

TEST(Fading, RicianHasSmallerFadeDepth) {
  // LOS component should reduce the spread of channel magnitudes.
  RunningStats rayleigh_mag, rician_mag;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    FadingConfig cfg;
    cfg.seed = seed;
    cfg.num_taps = 1;
    FadingChannel ray(cfg);
    cfg.rician_los = true;
    cfg.rician_k_db = 10.0;
    FadingChannel ric(cfg);
    rayleigh_mag.add(std::abs(ray.frequency_response(64)[0]));
    rician_mag.add(std::abs(ric.frequency_response(64)[0]));
  }
  EXPECT_LT(rician_mag.stddev(), rayleigh_mag.stddev() * 0.75);
}

TEST(Fading, InvalidConfigThrows) {
  FadingConfig cfg;
  cfg.num_taps = 0;
  EXPECT_THROW(FadingChannel{cfg}, std::invalid_argument);
  cfg = FadingConfig{};
  cfg.coherence_time = -1.0;
  EXPECT_THROW(FadingChannel{cfg}, std::invalid_argument);
  cfg = FadingConfig{};
  cfg.tap_decay = 0.0;
  EXPECT_THROW(FadingChannel{cfg}, std::invalid_argument);
}


TEST(Fading, TimingOffsetDelaysWaveform) {
  FadingConfig cfg;
  cfg.seed = 55;
  cfg.num_taps = 1;
  cfg.snr_db = 300.0;
  cfg.coherence_time = 1e3;
  FadingChannel aligned(cfg);
  cfg.timing_offset_samples = 5;
  FadingChannel offset(cfg);
  CxVec tx(50, Cx{});
  tx[0] = Cx{1.0, 0.0};
  const CxVec a = aligned.transmit(tx);
  const CxVec b = offset.transmit(tx);
  // The impulse lands 5 samples later through the offset channel.
  std::size_t peak_a = 0, peak_b = 0;
  for (std::size_t i = 1; i < 50; ++i) {
    if (std::abs(a[i]) > std::abs(a[peak_a])) peak_a = i;
    if (std::abs(b[i]) > std::abs(b[peak_b])) peak_b = i;
  }
  EXPECT_EQ(peak_b, peak_a + 5);
}

TEST(PathLoss, MonotoneInDistance) {
  const PathLossModel model;
  EXPECT_LT(model.loss_db(1.0), model.loss_db(3.0));
  EXPECT_LT(model.loss_db(3.0), model.loss_db(10.0));
}

TEST(PathLoss, ExponentSlope) {
  PathLossConfig cfg;
  cfg.exponent = 3.0;
  const PathLossModel model(cfg);
  // 10x distance -> 30 dB extra loss at exponent 3.
  EXPECT_NEAR(model.loss_db(10.0) - model.loss_db(1.0), 30.0, 1e-9);
}

TEST(PathLoss, SnrDecreasesWithDistance) {
  const PathLossModel model;
  EXPECT_GT(model.snr_db(20.0, 1.0), model.snr_db(20.0, 8.0));
}

TEST(PathLoss, UsrpPowerMagnitudeMapping) {
  // Full scale = 20 dBm; 0.1 magnitude = -20 dB amplitude.
  EXPECT_NEAR(usrp_power_magnitude_to_dbm(1.0), 20.0, 1e-9);
  EXPECT_NEAR(usrp_power_magnitude_to_dbm(0.1), 0.0, 1e-9);
  // Each doubling of magnitude is +6 dB (paper sweeps 0.0125..0.2).
  EXPECT_NEAR(usrp_power_magnitude_to_dbm(0.2) -
                  usrp_power_magnitude_to_dbm(0.1),
              6.0, 0.05);
  EXPECT_THROW(usrp_power_magnitude_to_dbm(0.0), std::invalid_argument);
  EXPECT_THROW(usrp_power_magnitude_to_dbm(1.5), std::invalid_argument);
}

// -------------------------------------------- correlated shadowing

TEST(Shadowing, SameSeedBitIdenticalOffsets) {
  const channel::ShadowingConfig cfg{};
  const std::vector<std::pair<double, double>> pos{{0, 0}, {3, 4}, {8, 1}};
  const channel::CorrelatedShadowing a(cfg, pos, 5.0, 77);
  const channel::CorrelatedShadowing b(cfg, pos, 5.0, 77);
  for (double t = 0.0; t < 5.0; t += 0.37) {
    for (std::size_t i = 0; i < pos.size(); ++i) {
      ASSERT_EQ(a.offset_db(i, t), b.offset_db(i, t))
          << "sta " << i << " t " << t;
    }
  }
}

TEST(Shadowing, DifferentSeedsDecorrelate) {
  const channel::ShadowingConfig cfg{};
  const std::vector<std::pair<double, double>> pos{{0, 0}, {5, 5}};
  const channel::CorrelatedShadowing a(cfg, pos, 5.0, 1);
  const channel::CorrelatedShadowing b(cfg, pos, 5.0, 2);
  bool any_diff = false;
  for (double t = 0.0; t < 5.0 && !any_diff; t += 0.5) {
    any_diff = a.offset_db(0, t) != b.offset_db(0, t);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Shadowing, CoLocatedStationsShadowTogether) {
  // d = 0 => spatial correlation exp(-0/d0) = 1. The singular matrix
  // forces the Cholesky's diagonal-jitter retry, so the two stations are
  // near-identical (within the jitter's footprint), not bit-equal.
  const channel::ShadowingConfig cfg{};
  const std::vector<std::pair<double, double>> pos{{2, 2}, {2, 2}};
  const channel::CorrelatedShadowing sh(cfg, pos, 4.0, 9);
  for (double t = 0.0; t < 4.0; t += 0.21) {
    EXPECT_NEAR(sh.offset_db(0, t), sh.offset_db(1, t), 1e-2) << t;
  }
}

TEST(Shadowing, NearbyStationsCorrelateMoreThanDistantOnes) {
  channel::ShadowingConfig cfg;
  cfg.decorr_distance_m = 5.0;
  cfg.decorr_time_s = 0.05;  // fast temporal churn -> many samples
  cfg.sample_interval_s = 0.05;
  const std::vector<std::pair<double, double>> pos{
      {0, 0}, {0.5, 0}, {50, 0}};
  const channel::CorrelatedShadowing sh(cfg, pos, 400.0, 13);
  double c_near = 0.0, c_far = 0.0, v0 = 0.0, v1 = 0.0, v2 = 0.0;
  std::size_t n = 0;
  for (double t = 0.0; t < 400.0; t += 0.05, ++n) {
    const double a = sh.offset_db(0, t);
    const double b = sh.offset_db(1, t);
    const double c = sh.offset_db(2, t);
    c_near += a * b;
    c_far += a * c;
    v0 += a * a;
    v1 += b * b;
    v2 += c * c;
  }
  const double rho_near = c_near / std::sqrt(v0 * v1);
  const double rho_far = c_far / std::sqrt(v0 * v2);
  EXPECT_GT(rho_near, 0.7);          // 0.5 m apart, d0 = 5 m
  EXPECT_LT(rho_far, 0.3);           // 50 m apart: essentially independent
  EXPECT_GT(rho_near, rho_far + 0.3);
}

TEST(Shadowing, MarginalStdDevTracksSigma) {
  channel::ShadowingConfig cfg;
  cfg.sigma_db = 4.0;
  cfg.decorr_time_s = 0.05;
  cfg.sample_interval_s = 0.05;
  const std::vector<std::pair<double, double>> pos{{0, 0}};
  const channel::CorrelatedShadowing sh(cfg, pos, 500.0, 21);
  double sum = 0.0, sum_sq = 0.0;
  std::size_t n = 0;
  for (double t = 0.0; t < 500.0; t += 0.05, ++n) {
    const double x = sh.offset_db(0, t);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / static_cast<double>(n);
  const double sd =
      std::sqrt(sum_sq / static_cast<double>(n) - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(sd, cfg.sigma_db, 0.8);
}

TEST(Shadowing, OutOfRangeAndDegenerateInputsAreZero) {
  const channel::ShadowingConfig cfg{};
  const channel::CorrelatedShadowing sh(
      cfg, {{0, 0}}, 2.0, 3);
  EXPECT_EQ(sh.offset_db(5, 1.0), 0.0);  // index past the last station
  // Time clamping at the grid ends: finite values, no crash.
  EXPECT_TRUE(std::isfinite(sh.offset_db(0, -10.0)));
  EXPECT_TRUE(std::isfinite(sh.offset_db(0, 100.0)));

  const channel::CorrelatedShadowing empty(cfg, {}, 2.0, 3);
  EXPECT_EQ(empty.num_stations(), 0u);
  EXPECT_EQ(empty.offset_db(0, 1.0), 0.0);

  const channel::CorrelatedShadowing flat(cfg, {{0, 0}}, 0.0, 3);
  EXPECT_TRUE(std::isfinite(flat.offset_db(0, 0.0)));
}

}  // namespace
}  // namespace carpool
