#pragma once

// Shared BENCH_*.json comparison machinery for bench_diff (the blocking
// CI gate) and bench_report (the trend dashboard). Both tools must agree
// on what a metric is, which metrics gate, and how a tolerance is
// derived, so the logic lives here once:
//
//   - flatten a metrics export to "counters.x" / "histograms.z.mean" keys
//     (numeric leaves only; the schema_version-2 `meta` strings and
//     bucket arrays are parsed and discarded),
//   - aggregate baseline runs (run*/ subdirectories or one flat dir)
//     into per-metric mean + coefficient of variation,
//   - tolerance_pct = max(threshold, sigma * cv_pct),
//   - gates: goodput/throughput and kernel speedup ratios fail on
//     decrease, latency/delay on increase; everything else is
//     informational.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace carpool::benchcmp {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ JSON
// Minimal recursive-descent parser for the flat metrics schema. Values we
// care about are numbers; everything else (strings, bools, null) is parsed
// and discarded.

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  explicit JsonParser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      failed = true;
      return std::nullopt;
    }
    ++pos;  // closing quote
    return out;
  }

  std::optional<double> parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            std::strchr("+-.eE", text[pos]) != nullptr)) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    try {
      return std::stod(text.substr(start, pos - start));
    } catch (...) {
      failed = true;
      return std::nullopt;
    }
  }

  /// Parse any value; numeric leaves land in `out` under `prefix`.
  void parse_value(const std::string& prefix,
                   std::map<std::string, double>& out) {
    const char c = peek();
    if (c == '{') {
      consume('{');
      if (consume('}')) return;
      do {
        const auto key = parse_string();
        if (!key || !consume(':')) {
          failed = true;
          return;
        }
        parse_value(prefix.empty() ? *key : prefix + "." + *key, out);
        if (failed) return;
      } while (consume(','));
      if (!consume('}')) failed = true;
    } else if (c == '[') {
      consume('[');
      if (consume(']')) return;
      std::map<std::string, double> discard;  // bucket arrays: not diffed
      do {
        parse_value(prefix, discard);
        if (failed) return;
      } while (consume(','));
      if (!consume(']')) failed = true;
    } else if (c == '"') {
      if (!parse_string()) failed = true;
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    } else {
      const auto num = parse_number();
      if (!num) {
        failed = true;
        return;
      }
      out[prefix] = *num;
    }
  }
};

/// Flatten one metrics file: "counters.x", "gauges.y",
/// "histograms.z.mean", ... -> value.
inline std::optional<std::map<std::string, double>> load_metrics(
    const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text);
  std::map<std::string, double> flat;
  parser.parse_value("", flat);
  if (parser.failed) return std::nullopt;
  flat.erase("schema_version");
  return flat;
}

inline bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

enum class Gate { kNone, kHigherBetter, kLowerBetter };

inline Gate gate_for(const std::string& metric) {
  if (contains(metric, "goodput") || contains(metric, "throughput")) {
    return Gate::kHigherBetter;
  }
  // Kernel SIMD-vs-scalar speedup ratios (micro.*.simd_speedup) are
  // host-portable: both backends run on the same machine, so the ratio
  // gates even though the absolute symbols/sec rates stay informational.
  if (contains(metric, "speedup")) {
    return Gate::kHigherBetter;
  }
  // Simulated-time latency metrics only: wall-clock profiling histograms
  // (phy.fft and friends) vary with the CI host and must not block.
  if (contains(metric, "latency") || contains(metric, "delay")) {
    return Gate::kLowerBetter;
  }
  return Gate::kNone;
}

/// Baseline statistics for one metric across the reference runs.
struct BaselineStat {
  double mean = 0.0;
  double cv_pct = 0.0;  ///< 100 * stddev / |mean|; 0 for a single run
  std::size_t runs = 0;
  std::vector<double> values;  ///< per-run samples, run-dir order
};

/// Aggregate one BENCH file's metrics over every baseline run directory
/// that has it. Missing-from-some-runs metrics keep the runs they have.
inline std::map<std::string, BaselineStat> aggregate_baseline(
    const std::vector<fs::path>& run_dirs, const std::string& file_name) {
  std::map<std::string, std::vector<double>> samples;
  for (const fs::path& dir : run_dirs) {
    const fs::path path = dir / file_name;
    if (!fs::exists(path)) continue;
    const auto metrics = load_metrics(path);
    if (!metrics) continue;
    for (const auto& [metric, value] : *metrics) {
      samples[metric].push_back(value);
    }
  }
  std::map<std::string, BaselineStat> out;
  for (auto& [metric, values] : samples) {
    BaselineStat stat;
    stat.runs = values.size();
    for (const double v : values) stat.mean += v;
    stat.mean /= static_cast<double>(values.size());
    if (values.size() > 1 && std::abs(stat.mean) > 0.0) {
      double ss = 0.0;
      for (const double v : values) {
        ss += (v - stat.mean) * (v - stat.mean);
      }
      const double stddev =
          std::sqrt(ss / static_cast<double>(values.size() - 1));
      stat.cv_pct = 100.0 * stddev / std::abs(stat.mean);
    }
    stat.values = std::move(values);
    out[metric] = std::move(stat);
  }
  return out;
}

/// Keep diff tables and dashboards readable: histogram internals other
/// than mean/p99 (count, sum, min, max, bucket edges) are noise.
inline bool reportable(const std::string& metric) {
  if (!contains(metric, "histograms.")) return true;
  return contains(metric, ".mean") || contains(metric, ".p99");
}

/// Baseline layout discovery: run*/ subdirectories of repeated reference
/// runs, or (legacy) flat BENCH_*.json in the dir itself = a single run.
inline std::vector<fs::path> discover_run_dirs(const fs::path& baseline_dir) {
  std::vector<fs::path> run_dirs;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("run", 0) == 0) {
      run_dirs.push_back(entry.path());
    }
  }
  std::sort(run_dirs.begin(), run_dirs.end());
  if (run_dirs.empty()) run_dirs.push_back(baseline_dir);
  return run_dirs;
}

inline bool is_bench_file(const std::string& name) {
  return name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
         name.substr(name.size() - 5) == ".json";
}

/// Union of BENCH_*.json file names across the given directories, sorted.
inline std::vector<std::string> discover_bench_files(
    const std::vector<fs::path>& dirs) {
  std::vector<std::string> files;
  for (const fs::path& dir : dirs) {
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && is_bench_file(name) &&
          std::find(files.begin(), files.end(), name) == files.end()) {
        files.push_back(name);
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace carpool::benchcmp
