// bench_report — bench trend dashboard over committed baseline runs.
//
//   bench_report <baseline_dir> [--current <dir>] [--out <report.html>]
//                [--md <summary.md>] [--threshold <pct>] [--sigma <k>]
//
// Ingests a directory of BENCH_*.json exports laid out like the
// bench_diff baseline (run*/ subdirectories, e.g. bench/baselines/run1..
// run5) plus an optional --current directory holding a fresh run, and
// emits a self-contained HTML dashboard: one row per reportable metric
// with an inline SVG sparkline of its per-run trend, the baseline mean,
// the current value, and the delta judged against the same
// max(threshold, sigma * cv_pct) tolerance bench_diff gates on (the
// logic is shared via bench_compare.hpp, so dashboard and gate can never
// disagree). --md writes a compact markdown summary of the gated
// metrics, suitable for a CI job summary.
//
// Exit codes: 0 = report written (regressions are *reported*, not
// failed — bench_diff is the blocking gate), 2 = usage or I/O error.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_compare.hpp"

namespace {

namespace fs = std::filesystem;
using namespace carpool::benchcmp;

struct MetricRow {
  std::string metric;
  std::vector<double> history;  ///< baseline runs, run-dir order
  std::optional<double> current;
  double mean = 0.0;
  double change_pct = 0.0;
  double tolerance_pct = 0.0;
  Gate gate = Gate::kNone;
  bool regressed = false;
  bool improved = false;  ///< gated metric moved the good way past tol
};

struct FileReport {
  std::string name;  ///< e.g. BENCH_ablation.json
  std::vector<MetricRow> rows;
};

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Inline SVG sparkline: baseline runs as a polyline, current value (if
/// any) appended as a highlighted dot — red on regression, green on a
/// gated improvement, blue otherwise.
std::string sparkline_svg(const MetricRow& row) {
  std::vector<double> points = row.history;
  if (row.current) points.push_back(*row.current);
  const int w = 140;
  const int h = 30;
  const int pad = 3;
  if (points.size() < 2) {
    return "<svg class=\"spark\" width=\"" + std::to_string(w) +
           "\" height=\"" + std::to_string(h) + "\"></svg>";
  }
  double lo = points[0];
  double hi = points[0];
  for (const double p : points) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double span = hi - lo;
  auto px = [&](std::size_t i) {
    return pad + (w - 2.0 * pad) * static_cast<double>(i) /
                     static_cast<double>(points.size() - 1);
  };
  auto py = [&](double v) {
    // Flat series draw mid-height; SVG y grows downward.
    const double t = span > 0.0 ? (v - lo) / span : 0.5;
    return h - pad - (h - 2.0 * pad) * t;
  };
  std::ostringstream svg;
  svg << "<svg class=\"spark\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << " " << h << "\">";
  svg << "<polyline fill=\"none\" stroke=\"#8899aa\" stroke-width=\"1.2\" "
         "points=\"";
  const std::size_t base_n = row.history.size();
  for (std::size_t i = 0; i < base_n; ++i) {
    if (i != 0) svg << ' ';
    svg << px(i) << ',' << py(points[i]);
  }
  svg << "\"/>";
  for (std::size_t i = 0; i < base_n; ++i) {
    svg << "<circle cx=\"" << px(i) << "\" cy=\"" << py(points[i])
        << "\" r=\"1.6\" fill=\"#8899aa\"/>";
  }
  if (row.current) {
    const char* color = row.regressed ? "#cc3333"
                        : row.improved ? "#2a9d4e"
                                       : "#3366cc";
    svg << "<line x1=\"" << px(base_n - 1) << "\" y1=\""
        << py(points[base_n - 1]) << "\" x2=\"" << px(base_n)
        << "\" y2=\"" << py(points[base_n])
        << "\" stroke=\"" << color << "\" stroke-width=\"1.4\"/>";
    svg << "<circle cx=\"" << px(base_n) << "\" cy=\"" << py(points[base_n])
        << "\" r=\"2.6\" fill=\"" << color << "\"/>";
  }
  svg << "</svg>";
  return svg.str();
}

std::vector<FileReport> build_reports(const std::vector<fs::path>& run_dirs,
                                      const std::vector<std::string>& files,
                                      const fs::path& current_dir,
                                      bool have_current, double threshold_pct,
                                      double sigma) {
  std::vector<FileReport> reports;
  for (const std::string& name : files) {
    const auto base = aggregate_baseline(run_dirs, name);
    if (base.empty()) {
      std::fprintf(stderr, "bench_report: %s: baseline parse failure "
                   "(skipped)\n", name.c_str());
      continue;
    }
    std::optional<std::map<std::string, double>> cur;
    if (have_current) {
      const fs::path cur_path = current_dir / name;
      if (fs::exists(cur_path)) cur = load_metrics(cur_path);
    }
    FileReport report;
    report.name = name;
    for (const auto& [metric, stat] : base) {
      if (!reportable(metric)) continue;
      MetricRow row;
      row.metric = metric;
      row.history = stat.values;
      row.mean = stat.mean;
      row.gate = gate_for(metric);
      row.tolerance_pct = std::max(threshold_pct, sigma * stat.cv_pct);
      if (cur) {
        const auto it = cur->find(metric);
        if (it != cur->end()) {
          row.current = it->second;
          const double denom = std::abs(stat.mean);
          row.change_pct =
              denom > 0.0 ? 100.0 * (*row.current - stat.mean) / denom
                          : (*row.current == stat.mean ? 0.0 : 100.0);
          row.regressed = (row.gate == Gate::kHigherBetter &&
                           row.change_pct < -row.tolerance_pct) ||
                          (row.gate == Gate::kLowerBetter &&
                           row.change_pct > row.tolerance_pct);
          row.improved = (row.gate == Gate::kHigherBetter &&
                          row.change_pct > row.tolerance_pct) ||
                         (row.gate == Gate::kLowerBetter &&
                          row.change_pct < -row.tolerance_pct);
        }
      }
      report.rows.push_back(std::move(row));
    }
    // Gated metrics first (they're what the dashboard is for), then
    // alphabetical within each group.
    std::stable_sort(report.rows.begin(), report.rows.end(),
                     [](const MetricRow& a, const MetricRow& b) {
                       return (a.gate != Gate::kNone) >
                              (b.gate != Gate::kNone);
                     });
    reports.push_back(std::move(report));
  }
  return reports;
}

bool write_html(const std::string& path,
                const std::vector<FileReport>& reports,
                std::size_t n_runs, bool have_current, double threshold_pct,
                double sigma) {
  std::ofstream out(path);
  if (!out) return false;
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         "<title>carpool bench trends</title>\n<style>\n"
         "body{font:14px/1.45 -apple-system,'Segoe UI',sans-serif;"
         "margin:2em auto;max-width:72em;color:#222;}\n"
         "h1{font-size:1.4em;} h2{font-size:1.1em;margin-top:2em;"
         "border-bottom:1px solid #ddd;padding-bottom:.2em;}\n"
         "table{border-collapse:collapse;width:100%;}\n"
         "th,td{text-align:left;padding:.3em .6em;"
         "border-bottom:1px solid #eee;white-space:nowrap;}\n"
         "th{color:#666;font-weight:600;}\n"
         "td.num{text-align:right;font-variant-numeric:tabular-nums;}\n"
         "tr.gated td.metric{font-weight:600;}\n"
         ".spark{vertical-align:middle;}\n"
         ".delta-bad{color:#cc3333;font-weight:700;}\n"
         ".delta-good{color:#2a9d4e;}\n"
         ".delta-flat{color:#888;}\n"
         ".badge{font-size:.78em;border-radius:3px;padding:.1em .4em;"
         "margin-left:.4em;color:#fff;}\n"
         ".badge.reg{background:#cc3333;} .badge.gate{background:#8899aa;}\n"
         ".meta{color:#666;}\n"
         "</style></head><body>\n";
  out << "<h1>carpool bench trends</h1>\n";
  out << "<p class=\"meta\">" << n_runs << " baseline run(s)";
  if (have_current) out << " + current";
  out << "; tolerance = max(" << threshold_pct << "%, " << sigma
      << " &times; cv). Sparkline: baseline runs in order";
  if (have_current) {
    out << ", last point = current (red = regression beyond tolerance, "
           "green = gated improvement)";
  }
  out << ". Gated rows (bold) are the goodput/latency metrics bench_diff "
         "blocks on; the rest are informational.</p>\n";

  std::size_t regressions = 0;
  for (const FileReport& report : reports) {
    for (const MetricRow& row : report.rows) {
      if (row.regressed) ++regressions;
    }
  }
  if (have_current) {
    if (regressions > 0) {
      out << "<p><strong class=\"delta-bad\">" << regressions
          << " gated regression(s) beyond tolerance.</strong></p>\n";
    } else {
      out << "<p class=\"delta-good\">No gated regressions beyond "
             "tolerance.</p>\n";
    }
  }

  for (const FileReport& report : reports) {
    out << "<h2>" << html_escape(report.name) << "</h2>\n<table>\n"
        << "<tr><th>metric</th><th>trend</th><th>baseline mean</th>"
        << "<th>current</th><th>delta</th><th>tol</th></tr>\n";
    for (const MetricRow& row : report.rows) {
      const bool gated = row.gate != Gate::kNone;
      out << "<tr" << (gated ? " class=\"gated\"" : "") << ">";
      out << "<td class=\"metric\">" << html_escape(row.metric);
      if (row.regressed) {
        out << "<span class=\"badge reg\">REGRESSION</span>";
      } else if (gated) {
        out << "<span class=\"badge gate\">gated</span>";
      }
      out << "</td>";
      out << "<td>" << sparkline_svg(row) << "</td>";
      out << "<td class=\"num\">" << fmt_value(row.mean) << "</td>";
      if (row.current) {
        const char* cls = row.regressed            ? "delta-bad"
                          : row.improved           ? "delta-good"
                          : std::abs(row.change_pct) < 1e-9 ? "delta-flat"
                                                            : "";
        char delta[64];
        std::snprintf(delta, sizeof(delta), "%+.2f%%", row.change_pct);
        out << "<td class=\"num\">" << fmt_value(*row.current) << "</td>";
        out << "<td class=\"num " << cls << "\">" << delta << "</td>";
      } else {
        out << "<td class=\"num\">&mdash;</td><td class=\"num\">&mdash;"
               "</td>";
      }
      if (gated) {
        char tol[64];
        std::snprintf(tol, sizeof(tol), "%.1f%%", row.tolerance_pct);
        out << "<td class=\"num\">" << tol << "</td>";
      } else {
        out << "<td class=\"num\">&mdash;</td>";
      }
      out << "</tr>\n";
    }
    out << "</table>\n";
  }
  out << "</body></html>\n";
  return static_cast<bool>(out);
}

bool write_markdown(const std::string& path,
                    const std::vector<FileReport>& reports,
                    std::size_t n_runs, bool have_current) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# Bench trends\n\n" << n_runs << " baseline run(s)"
      << (have_current ? " + current" : "") << ".\n\n";
  out << "| file | metric | baseline | current | delta | status |\n"
      << "|---|---|---:|---:|---:|---|\n";
  for (const FileReport& report : reports) {
    for (const MetricRow& row : report.rows) {
      if (row.gate == Gate::kNone) continue;
      out << "| " << report.name << " | " << row.metric << " | "
          << fmt_value(row.mean) << " | ";
      if (row.current) {
        char delta[64];
        std::snprintf(delta, sizeof(delta), "%+.2f%%", row.change_pct);
        out << fmt_value(*row.current) << " | " << delta << " | "
            << (row.regressed ? "**REGRESSION**"
                : row.improved ? "improved"
                               : "ok");
      } else {
        out << "— | — | no current run";
      }
      out << " |\n";
    }
  }
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_arg;
  std::string current_arg;
  std::string out_path = "bench_report.html";
  std::string md_path;
  double threshold_pct = 10.0;
  double sigma = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_report: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--current") {
      current_arg = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--md") {
      md_path = next();
    } else if (arg == "--threshold") {
      threshold_pct = std::stod(next());
    } else if (arg == "--sigma") {
      sigma = std::stod(next());
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: bench_report <baseline_dir> [--current <dir>] "
          "[--out <report.html>]\n"
          "                    [--md <summary.md>] [--threshold <pct>] "
          "[--sigma <k>]\n");
      return 0;
    } else if (baseline_arg.empty()) {
      baseline_arg = arg;
    } else {
      std::fprintf(stderr, "bench_report: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (baseline_arg.empty() || !fs::is_directory(baseline_arg)) {
    std::fprintf(stderr,
                 "bench_report: baseline directory required (got '%s')\n",
                 baseline_arg.c_str());
    return 2;
  }
  const bool have_current = !current_arg.empty();
  if (have_current && !fs::is_directory(current_arg)) {
    std::fprintf(stderr, "bench_report: --current %s is not a directory\n",
                 current_arg.c_str());
    return 2;
  }

  const std::vector<fs::path> run_dirs = discover_run_dirs(baseline_arg);
  std::vector<fs::path> all_dirs = run_dirs;
  if (have_current) all_dirs.push_back(current_arg);
  const std::vector<std::string> files = discover_bench_files(all_dirs);
  if (files.empty()) {
    std::fprintf(stderr, "bench_report: no BENCH_*.json found\n");
    return 2;
  }

  const std::vector<FileReport> reports =
      build_reports(run_dirs, files, current_arg, have_current,
                    threshold_pct, sigma);
  if (reports.empty()) {
    std::fprintf(stderr, "bench_report: nothing to report\n");
    return 2;
  }

  if (!write_html(out_path, reports, run_dirs.size(), have_current,
                  threshold_pct, sigma)) {
    std::fprintf(stderr, "bench_report: cannot write %s\n",
                 out_path.c_str());
    return 2;
  }
  std::size_t metrics = 0;
  std::size_t regressions = 0;
  for (const FileReport& report : reports) {
    metrics += report.rows.size();
    for (const MetricRow& row : report.rows) {
      if (row.regressed) ++regressions;
    }
  }
  std::printf("bench_report: %s (%zu file(s), %zu metric(s), %zu "
              "regression(s))\n",
              out_path.c_str(), reports.size(), metrics, regressions);
  if (!md_path.empty()) {
    if (!write_markdown(md_path, reports, run_dirs.size(), have_current)) {
      std::fprintf(stderr, "bench_report: cannot write %s\n",
                   md_path.c_str());
      return 2;
    }
    std::printf("bench_report: %s\n", md_path.c_str());
  }
  return 0;
}
