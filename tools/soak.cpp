// tools/soak — chaos soak campaign driver (docs/SOAK.md).
//
//   soak                                   # all built-in scenarios
//   soak --scenario scenarios/roaming.json # one scenario file
//   soak --frames 1000000                  # million-judgement campaign
//   soak --bundle-dir out/ --shrink        # emit + shrink repro bundles
//   soak --replay out/bundle_x.json        # replay a repro bundle
//   soak --frames 200000 --threads 0       # fan repeats across all cores
//   soak --replay b.json --chrome-trace t.json  # Perfetto timeline of
//                                               # the failing frame
//   soak --validate --scenario scenarios/steady.json  # schema check only
//   soak --trace capture.csv               # recorded SNR timeline overlay
//   soak --fuzz --fuzz-rounds 20           # coverage-guided fuzz campaign
//
// --validate parses and round-trips every --scenario file without
// running anything; exit 0 iff all are schema-valid. --trace FILE loads
// a recorded per-STA SNR timeline (CSV "time,sta,snr_db" or JSONL;
// chaos/snr_trace.hpp) and overlays it on every scenario run. --fuzz
// runs the coverage-guided scenario fuzzer (chaos/fuzz.hpp) with the
// loaded scenarios (or built-ins) as the seed corpus: --fuzz-rounds /
// --fuzz-batch / --fuzz-frames / --fuzz-seed shape the campaign,
// --fuzz-inject arms the inject_fault mutation operator, --corpus-dir
// writes the evolved corpus as scenario JSON files. The printed
// `corpus digest` is bit-identical at any --threads count.
//
// --chrome-trace PATH writes the run's frame-lifecycle spans (TXOP ->
// frame -> subframe -> decode; docs/OBSERVABILITY.md) as a Chrome
// trace-event file loadable in https://ui.perfetto.dev or
// chrome://tracing. --span-jsonl PATH writes the same spans as JSONL
// (convertible later with tools/trace_convert). Both need a build with
// CARPOOL_ENABLE_TRACE=ON; otherwise a warning is printed and the file
// holds no spans.
//
// --threads N shards timeline repeats across N workers (0 = auto, one
// per hardware thread; default honours CARPOOL_THREADS, else serial).
// The report and metrics are bit-for-bit identical at any thread count
// (docs/PARALLELISM.md); the `metrics fingerprint` line printed at the
// end digests every counter and gauge so CI can diff serial vs parallel
// runs with a string compare.
//
// Fault tolerance (docs/FAULT_TOLERANCE.md): --retry-attempts N retries
// a throwing repeat shard up to N times on a fresh worker (a successful
// retry is bit-identical to a first-try success); --shard-watchdog S
// arms a per-shard wall-clock watchdog. Repeats that exhaust their
// retries are quarantined into a degraded report instead of killing the
// campaign. --checkpoint-dir DIR flushes a resumable checkpoint every
// --checkpoint-every repeats (campaign mode needs exactly one scenario;
// fuzz mode persists its corpus as fuzz_state.json); --resume reloads it
// and continues — the resumed run's metrics fingerprint (and the fuzz
// corpus digest) are bit-identical to an uninterrupted campaign.
//
// Exit codes: 0 = campaign clean, 1 = invariant violation (bundle
// written when --bundle-dir is set), 2 = usage or scenario-file error,
// 3 = clean but degraded (some repeats quarantined after retries).

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fuzz.hpp"
#include "chaos/runner.hpp"
#include "chaos/scenario.hpp"
#include "chaos/shrink.hpp"
#include "chaos/snr_trace.hpp"
#include "dsp/kernels.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"

namespace {

using namespace carpool;
using namespace carpool::chaos;

void usage() {
  std::fprintf(stderr,
               "usage: soak [--scenario FILE]... [--frames N] "
               "[--bundle-dir DIR] [--shrink]\n"
               "            [--replay BUNDLE] [--metrics FILE] [--list] "
               "[--threads N]\n"
               "            [--chrome-trace FILE] [--span-jsonl FILE]\n"
               "            [--validate] [--trace FILE]\n"
               "            [--fuzz] [--fuzz-rounds N] [--fuzz-batch N] "
               "[--fuzz-frames N]\n"
               "            [--fuzz-seed N] [--fuzz-inject] "
               "[--corpus-dir DIR]\n"
               "            [--retry-attempts N] [--shard-watchdog SECONDS]\n"
               "            [--checkpoint-dir DIR] [--checkpoint-every N] "
               "[--resume]\n"
               "            [--kernel auto|scalar|simd|sse2|avx2|avx512] "
               "[--kernel-info]\n");
}

/// Strict --kernel parser (the resolve_threads flag-hardening rule for
/// CLI input): an unknown name or a tier this CPU cannot run is a usage
/// error, never a silent fallback.
void apply_kernel_flag(const char* text) {
  switch (carpool::dsp::select_kernel(text == nullptr ? "" : text)) {
    case carpool::dsp::KernelSelect::kOk:
      return;
    case carpool::dsp::KernelSelect::kUnavailable:
      std::fprintf(stderr,
                   "soak: --kernel %s is not supported on this CPU (%s)\n",
                   text, carpool::dsp::kernel_info().c_str());
      usage();
      std::exit(2);
    case carpool::dsp::KernelSelect::kUnknown:
      break;
  }
  std::fprintf(stderr,
               "soak: --kernel wants auto|scalar|simd|sse2|avx2|avx512, "
               "got \"%s\"\n",
               text == nullptr ? "" : text);
  usage();
  std::exit(2);
}

/// Strict non-negative integer flag parser: the whole value must be a
/// base-10 unsigned integer ("--frames 12x", "--threads -3", and
/// "--fuzz-seed" followed by nothing are all usage errors, not silent
/// garbage). Exits 2 on any malformed value.
std::uint64_t parse_u64(const char* flag, const char* text) {
  if (text == nullptr || *text == '\0' || *text == '-' || *text == '+') {
    std::fprintf(stderr, "soak: %s wants a non-negative integer, got \"%s\"\n",
                 flag, text == nullptr ? "" : text);
    usage();
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "soak: %s wants a non-negative integer, got \"%s\"\n",
                 flag, text);
    usage();
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

/// Strict non-negative seconds parser for --shard-watchdog.
double parse_seconds(const char* flag, const char* text) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "soak: %s wants non-negative seconds\n", flag);
    usage();
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v >= 0.0)) {
    std::fprintf(stderr, "soak: %s wants non-negative seconds, got \"%s\"\n",
                 flag, text);
    usage();
    std::exit(2);
  }
  return v;
}

/// Export collected frame-lifecycle spans to the requested files.
/// Returns true on success (or nothing requested).
bool export_spans(const carpool::obs::SpanCollector& spans,
                  const std::string& chrome_path,
                  const std::string& jsonl_path) {
  bool ok = true;
  if (!chrome_path.empty()) {
    if (carpool::obs::ChromeTraceWriter::write(chrome_path,
                                               spans.records())) {
      std::printf("chrome trace: %s (%zu spans)\n", chrome_path.c_str(),
                  spans.records().size());
    } else {
      std::fprintf(stderr, "soak: cannot write %s\n", chrome_path.c_str());
      ok = false;
    }
  }
  if (!jsonl_path.empty()) {
    try {
      carpool::obs::TraceSink sink(jsonl_path);
      spans.write_jsonl(sink);
      sink.flush();
      std::printf("span jsonl: %s (%zu spans)\n", jsonl_path.c_str(),
                  spans.records().size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "soak: %s\n", e.what());
      ok = false;
    }
  }
  return ok;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void print_report(const Scenario& s, const SoakReport& r) {
  std::printf(
      "scenario %-22s seed %-6llu repeats %-3zu episodes %-4zu "
      "frames %-9llu probes %-6llu goodput %.2f Mbit/s  %s\n",
      s.name.c_str(), static_cast<unsigned long long>(s.seed), r.repeats,
      r.episodes_run, static_cast<unsigned long long>(r.frames_judged),
      static_cast<unsigned long long>(r.probes),
      r.mean_goodput_bps / 1e6, r.ok() ? "OK" : "VIOLATION");
  for (const Violation& v : r.violations) {
    std::printf("  violation: %s at frame %llu (t=%.6f, episode %zu, "
                "repeat %zu)\n    %s\n",
                v.invariant.c_str(),
                static_cast<unsigned long long>(v.frame), v.time,
                v.episode, v.repeat, v.detail.c_str());
  }
  if (!r.margins.minima().empty()) {
    const auto tightest = std::min_element(
        r.margins.minima().begin(), r.margins.minima().end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::printf("  min margin: %.4f (%s)\n", tightest->second,
                tightest->first.c_str());
  }
  if (!r.bundle_path.empty()) {
    std::printf("  repro bundle: %s\n", r.bundle_path.c_str());
  }
  if (r.resumed) {
    std::printf("  resumed from checkpoint (%zu repeats carried over)\n",
                r.resumed_repeats);
  }
  if (!r.checkpoint_path.empty()) {
    std::printf("  checkpoint: %s\n", r.checkpoint_path.c_str());
  }
  if (r.degraded.degraded() || r.degraded.retries > 0 ||
      r.degraded.stalls > 0) {
    std::printf("  %s\n", r.degraded.to_string().c_str());
  }
}

int replay_mode(const std::string& path) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "soak: cannot read bundle %s\n", path.c_str());
    return 2;
  }
  const BundleParseResult parsed = bundle_from_json(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "soak: bad bundle %s: %s\n", path.c_str(),
                 parsed.error.to_string().c_str());
    return 2;
  }
  const ReplayResult result = replay_bundle(*parsed.bundle);
  if (result.reproduced) {
    std::printf("bundle %s: reproduced %s at frame %llu\n", path.c_str(),
                parsed.bundle->violation.invariant.c_str(),
                static_cast<unsigned long long>(
                    parsed.bundle->violation.frame));
    return 0;
  }
  if (result.violation) {
    std::printf("bundle %s: NOT reproduced — got %s at frame %llu "
                "instead\n",
                path.c_str(), result.violation->invariant.c_str(),
                static_cast<unsigned long long>(result.violation->frame));
  } else {
    std::printf("bundle %s: NOT reproduced — campaign ran clean\n",
                path.c_str());
  }
  return 1;
}

/// --validate: parse + round-trip every scenario file without running
/// anything. Reports every file (not just the first failure) so a CI
/// sweep over scenarios/*.json gives one complete answer.
int validate_mode(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr,
                 "soak: --validate needs at least one --scenario FILE\n");
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      exit_code = 2;
      continue;
    }
    const ScenarioParseResult parsed = scenario_from_json(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   parsed.error.to_string().c_str());
      exit_code = 2;
      continue;
    }
    // Serialize -> parse must also hold, or repro bundles embedding this
    // scenario would not round-trip.
    const ScenarioParseResult round =
        scenario_from_json(scenario_to_json(*parsed.scenario));
    if (!round.ok()) {
      std::fprintf(stderr, "%s: INVALID: round-trip failed: %s\n",
                   path.c_str(), round.error.to_string().c_str());
      exit_code = 2;
      continue;
    }
    std::printf("%s: OK (%s, %.1fs, %zu STAs)\n", path.c_str(),
                parsed.scenario->name.c_str(), parsed.scenario->duration,
                parsed.scenario->num_stas);
  }
  return exit_code;
}

/// --fuzz: coverage-guided campaign over the loaded scenarios.
int fuzz_mode(const std::vector<Scenario>& seeds, const FuzzOptions& fopts,
              const std::string& corpus_dir) {
  const FuzzEngine engine(fopts);
  const FuzzReport report = engine.run(seeds);
  if (!report.resume_error.empty()) {
    std::fprintf(stderr, "soak: cannot resume fuzz state: %s\n",
                 report.resume_error.c_str());
    return 2;
  }
  if (report.resumed) {
    std::printf("fuzz: resumed from saved fuzz state\n");
  }

  std::printf("fuzz: %zu seeds, %zu rounds, %llu evals, corpus %zu "
              "(%llu admissions)\n",
              seeds.size(), report.rounds_run,
              static_cast<unsigned long long>(report.evals),
              report.corpus.size(),
              static_cast<unsigned long long>(report.corpus_adds));
  for (const FuzzHit& hit : report.hits) {
    std::printf("  HIT r%zu/b%zu op=%s: %s at frame %llu\n    %s\n",
                hit.round, hit.batch_index, hit.op.c_str(),
                hit.violation.invariant.c_str(),
                static_cast<unsigned long long>(hit.violation.frame),
                hit.violation.detail.c_str());
    if (!hit.bundle_path.empty()) {
      std::printf("    repro bundle: %s\n", hit.bundle_path.c_str());
    }
    if (hit.timeline_ratio < 1.0) {
      std::printf("    shrunk timeline: %.1fs -> %.1fs (ratio %.3f)\n",
                  hit.scenario.timeline_seconds(),
                  hit.shrunk.timeline_seconds(), hit.timeline_ratio);
    }
  }
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    if (ec) {
      std::fprintf(stderr, "soak: cannot create %s\n", corpus_dir.c_str());
      return 2;
    }
    for (std::size_t i = 0; i < report.corpus.size(); ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "/corpus_%03zu_%016" PRIx64
                    ".json", i, report.corpus[i].signature);
      std::ofstream out(corpus_dir + name);
      if (out) out << scenario_to_json(report.corpus[i].scenario);
    }
    std::printf("corpus: %zu entries -> %s\n", report.corpus.size(),
                corpus_dir.c_str());
  }
  // The determinism canary: equal at any --threads count.
  std::printf("corpus digest: 0x%016" PRIx64 "\n", report.corpus_digest());
  std::printf("metrics fingerprint: 0x%016" PRIx64 "\n",
              obs::Registry::global().fingerprint());
  return report.found() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenario_files;
  std::string replay_path;
  std::string metrics_path;
  std::string chrome_trace_path;
  std::string span_jsonl_path;
  SoakOptions opts;
  opts.threads = carpool::par::resolve_threads();  // CARPOOL_THREADS or 1
  bool do_shrink = false;
  bool list_only = false;
  bool validate_only = false;
  bool do_fuzz = false;
  std::string trace_path;
  std::string corpus_dir;
  FuzzOptions fuzz_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_files.push_back(next());
    } else if (arg == "--frames") {
      opts.max_frames = parse_u64("--frames", next());
    } else if (arg == "--bundle-dir") {
      opts.bundle_dir = next();
    } else if (arg == "--shrink") {
      do_shrink = true;
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--threads") {
      opts.threads = carpool::par::resolve_threads(
          static_cast<long long>(parse_u64("--threads", next())));
    } else if (arg == "--chrome-trace") {
      chrome_trace_path = next();
    } else if (arg == "--span-jsonl") {
      span_jsonl_path = next();
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--validate") {
      validate_only = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--fuzz") {
      do_fuzz = true;
    } else if (arg == "--fuzz-rounds") {
      fuzz_opts.rounds = parse_u64("--fuzz-rounds", next());
    } else if (arg == "--fuzz-batch") {
      fuzz_opts.batch = parse_u64("--fuzz-batch", next());
    } else if (arg == "--fuzz-frames") {
      fuzz_opts.eval_frames = parse_u64("--fuzz-frames", next());
    } else if (arg == "--fuzz-seed") {
      fuzz_opts.seed = parse_u64("--fuzz-seed", next());
    } else if (arg == "--fuzz-inject") {
      fuzz_opts.allow_inject = true;
    } else if (arg == "--corpus-dir") {
      corpus_dir = next();
    } else if (arg == "--retry-attempts") {
      const std::uint64_t n = parse_u64("--retry-attempts", next());
      if (n == 0) {
        std::fprintf(stderr, "soak: --retry-attempts wants >= 1\n");
        usage();
        return 2;
      }
      opts.retry.max_attempts = static_cast<std::size_t>(n);
    } else if (arg == "--shard-watchdog") {
      opts.retry.watchdog_seconds = parse_seconds("--shard-watchdog", next());
    } else if (arg == "--checkpoint-dir") {
      opts.checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      const std::uint64_t n = parse_u64("--checkpoint-every", next());
      if (n == 0) {
        std::fprintf(stderr, "soak: --checkpoint-every wants >= 1\n");
        usage();
        return 2;
      }
      opts.checkpoint_every = static_cast<std::size_t>(n);
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--kernel") {
      apply_kernel_flag(next());
    } else if (arg == "--kernel-info") {
      std::printf("%s\n", carpool::dsp::kernel_info().c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "soak: unknown argument %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (opts.resume && opts.checkpoint_dir.empty()) {
    std::fprintf(stderr, "soak: --resume needs --checkpoint-dir\n");
    usage();
    return 2;
  }

  // Span collection covers replay and campaign alike; the collector is
  // installed for the whole run and exported at exit.
  const bool want_spans =
      !chrome_trace_path.empty() || !span_jsonl_path.empty();
  if (want_spans && !obs::trace_compiled_in()) {
    std::fprintf(stderr,
                 "soak: warning: built with CARPOOL_ENABLE_TRACE=OFF; "
                 "span collection is compiled out and the trace will be "
                 "empty\n");
  }
  obs::SpanCollector span_collector;
  std::optional<obs::SpanCollector::ScopedCurrent> span_scope;
  if (want_spans) span_scope.emplace(span_collector);

  if (validate_only) return validate_mode(scenario_files);

  if (!replay_path.empty()) {
    const int code = replay_mode(replay_path);
    if (want_spans &&
        !export_spans(span_collector, chrome_trace_path, span_jsonl_path)) {
      return 2;
    }
    return code;
  }

  std::vector<Scenario> scenarios;
  if (scenario_files.empty()) {
    scenarios = default_scenarios();
  } else {
    for (const std::string& path : scenario_files) {
      std::string text;
      if (!read_file(path, text)) {
        std::fprintf(stderr, "soak: cannot read %s\n", path.c_str());
        return 2;
      }
      ScenarioParseResult parsed = scenario_from_json(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "soak: bad scenario %s: %s\n", path.c_str(),
                     parsed.error.to_string().c_str());
        return 2;
      }
      scenarios.push_back(std::move(*parsed.scenario));
    }
  }

  if (!trace_path.empty()) {
    std::string text;
    if (!read_file(trace_path, text)) {
      std::fprintf(stderr, "soak: cannot read trace %s\n",
                   trace_path.c_str());
      return 2;
    }
    const SnrTraceParseResult parsed = snr_trace_from_text(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "soak: bad trace %s: %s\n", trace_path.c_str(),
                   parsed.error.to_string().c_str());
      return 2;
    }
    std::printf("trace %s: %zu samples, %u STAs\n", trace_path.c_str(),
                parsed.trace->size(), parsed.trace->max_sta());
    for (Scenario& s : scenarios) s.snr_trace = *parsed.trace;
  }

  if (do_fuzz) {
    fuzz_opts.threads = opts.threads;
    fuzz_opts.bundle_dir = opts.bundle_dir;
    fuzz_opts.rte_norm_bound = opts.rte_norm_bound;
    fuzz_opts.checkpoint_dir = opts.checkpoint_dir;
    fuzz_opts.resume = opts.resume;
    return fuzz_mode(scenarios, fuzz_opts, corpus_dir);
  }

  if (list_only) {
    for (const Scenario& s : scenarios) {
      std::printf("%-22s duration %.1fs stas %zu %s\n", s.name.c_str(),
                  s.duration, s.num_stas, scenario_to_json(s).c_str());
    }
    return 0;
  }

  // A campaign checkpoint names one scenario; a multi-scenario sweep
  // would overwrite per-scenario files mid-flight and make --resume
  // ambiguous about which campaign to continue.
  if (!opts.checkpoint_dir.empty() && scenarios.size() != 1) {
    std::fprintf(stderr,
                 "soak: --checkpoint-dir needs exactly one --scenario "
                 "(got %zu)\n",
                 scenarios.size());
    usage();
    return 2;
  }

  // With a campaign budget, split it evenly across the scenario set so
  // `--frames 1000000` means one million judgements total.
  SoakOptions per = opts;
  if (opts.max_frames > 0 && scenarios.size() > 1) {
    per.max_frames = opts.max_frames / scenarios.size();
  }

  int exit_code = 0;
  bool any_degraded = false;
  std::uint64_t total_frames = 0;
  for (const Scenario& s : scenarios) {
    const SoakRunner runner(per);
    const SoakReport report = runner.run(s);
    if (!report.resume_error.empty()) {
      std::fprintf(stderr, "soak: cannot resume: %s\n",
                   report.resume_error.c_str());
      return 2;
    }
    total_frames += report.frames_judged;
    print_report(s, report);
    if (report.degraded.degraded()) any_degraded = true;
    if (!report.ok()) {
      exit_code = 1;
      if (do_shrink) {
        const ReproBundle bundle{s, report.violations.front()};
        const ShrinkResult shrunk = shrink_bundle(bundle);
        std::printf(
            "  shrink: %zu attempts, %zu accepted, timeline %.1fs -> "
            "%.1fs (ratio %.3f)\n",
            shrunk.attempts, shrunk.accepted, s.timeline_seconds(),
            shrunk.scenario.timeline_seconds(), shrunk.timeline_ratio);
        if (!per.bundle_dir.empty()) {
          const std::string path = per.bundle_dir + "/bundle_" + s.name +
                                   "_shrunk.json";
          std::ofstream out(path);
          if (out) {
            out << bundle_to_json({shrunk.scenario, shrunk.violation});
            std::printf("  shrunk bundle: %s\n", path.c_str());
          }
        }
      }
    }
  }

  std::printf("total frames judged: %llu\n",
              static_cast<unsigned long long>(total_frames));
  // Counter+gauge digest (wall-clock histograms excluded): identical
  // across thread counts, so serial-vs-parallel CI runs can diff it.
  std::printf("metrics fingerprint: 0x%016" PRIx64 "\n",
              obs::Registry::global().fingerprint());
  if (!metrics_path.empty()) {
    obs::Registry::global().write_json(metrics_path, "soak");
  }
  if (want_spans &&
      !export_spans(span_collector, chrome_trace_path, span_jsonl_path)) {
    return exit_code == 0 ? 2 : exit_code;
  }
  // Clean but degraded: some repeats were quarantined after exhausting
  // their retries. Distinct from 1 (violation) so CI can tell "campaign
  // found a bug" from "campaign lost shards".
  if (exit_code == 0 && any_degraded) return 3;
  return exit_code;
}
