// trace_convert — span JSONL -> Chrome trace-event JSON.
//
//   trace_convert <spans.jsonl> <out.json>
//
// Reads the `"type":"span"` JSONL stream written by
// obs::SpanCollector::write_jsonl (e.g. soak --span-jsonl, or a
// TraceSink file a simulation was configured with) and converts it to a
// Chrome trace-event file via obs::ChromeTraceWriter, loadable in
// https://ui.perfetto.dev or chrome://tracing. Non-span lines (the MAC
// event trace shares the same sink format) are skipped, so a mixed
// trace file converts cleanly.
//
// Exit codes: 0 = written, 1 = no span records found, 2 = usage/IO/parse
// error.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"

namespace {

using carpool::chaos::JsonValue;
using carpool::chaos::json_parse;
using carpool::obs::SpanRecord;

double num_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

/// Parse one JSONL line; true (and fills `out`) iff it is a span record.
bool parse_span_line(const std::string& line, std::size_t line_no,
                     SpanRecord& out, bool& parse_error) {
  const auto parsed = json_parse(line);
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_convert: line %zu: %s\n", line_no,
                 parsed.error.to_string().c_str());
    parse_error = true;
    return false;
  }
  const JsonValue& obj = *parsed.value;
  const JsonValue* type = obj.find("type");
  if (type == nullptr || !type->is_string() || type->as_string() != "span") {
    return false;
  }
  out = SpanRecord{};
  out.id = static_cast<std::uint64_t>(num_or(obj, "id", 0.0));
  out.parent = static_cast<std::uint64_t>(num_or(obj, "parent", 0.0));
  if (const JsonValue* name = obj.find("name");
      name != nullptr && name->is_string()) {
    out.name = name->as_string();
  }
  out.ids.txop = static_cast<std::int64_t>(num_or(obj, "txop", -1.0));
  out.ids.frame = static_cast<std::int64_t>(num_or(obj, "frame", -1.0));
  out.ids.subframe = static_cast<std::int64_t>(num_or(obj, "subframe", -1.0));
  out.ids.sta = static_cast<std::int64_t>(num_or(obj, "sta", -1.0));
  out.sim_start = num_or(obj, "sim_start", -1.0);
  out.sim_duration = num_or(obj, "sim_duration", 0.0);
  out.wall_start_ns =
      static_cast<std::uint64_t>(num_or(obj, "wall_start_ns", 0.0));
  out.wall_ns = static_cast<std::uint64_t>(num_or(obj, "wall_ns", 0.0));
  if (const JsonValue* outcome = obj.find("outcome");
      outcome != nullptr && outcome->is_string()) {
    out.outcome = outcome->as_string();
  }
  return out.id != 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: trace_convert <spans.jsonl> <out.json>\n");
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "trace_convert: cannot read %s\n", in_path.c_str());
    return 2;
  }

  std::vector<SpanRecord> records;
  std::string line;
  std::size_t line_no = 0;
  std::size_t skipped = 0;
  bool parse_error = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    SpanRecord record;
    if (parse_span_line(line, line_no, record, parse_error)) {
      records.push_back(std::move(record));
    } else if (!parse_error) {
      ++skipped;
    }
    if (parse_error) return 2;
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "trace_convert: no span records in %s (%zu non-span "
                 "line(s) skipped)\n",
                 in_path.c_str(), skipped);
    return 1;
  }
  if (!carpool::obs::ChromeTraceWriter::write(out_path, records)) {
    std::fprintf(stderr, "trace_convert: cannot write %s\n",
                 out_path.c_str());
    return 2;
  }
  std::printf("trace_convert: %s (%zu span(s), %zu non-span line(s) "
              "skipped)\n",
              out_path.c_str(), records.size(), skipped);
  return 0;
}
