// metric_lint — fail the build when a metric name lacks catalog metadata.
//
//   metric_lint [repo_root]          # default: current directory
//
// Scans *.cpp / *.hpp under src/, bench/, tools/ and examples/ (tests
// are exempt: they mint throwaway names) for string-literal metric
// names at instrumentation call sites —
//
//   counter("..."), gauge("..."), set_gauge("..."), histogram("..."),
//   latency_histogram("..."), OBS_SCOPED_TIMER("..."),
//   OBS_TIMED_SPAN("...")
//
// — and checks each against the metadata catalog in
// src/obs/metrics_meta.cpp (exact name or registered `prefix*` family).
// Any unregistered name is listed with its file:line and the tool exits
// 1, which CI treats as a build failure: every metric that can appear
// in a schema_version-2 export must carry unit/layer/description
// metadata. Names built at runtime (prefix + suffix concatenation) are
// linted by their literal prefix, which the catalog's `prefix*` entries
// cover.
//
// Exit codes: 0 = all names registered, 1 = unregistered names found,
// 2 = usage/IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "obs/metrics_meta.hpp"

namespace {

namespace fs = std::filesystem;

struct Hit {
  std::string file;  ///< repo-relative
  std::size_t line;
  std::string name;
};

bool is_source_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: metric_lint [repo_root]\n");
    return 2;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::path(".");
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "metric_lint: %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  const std::regex site(
      R"((?:\b(?:counter|set_gauge|gauge|latency_histogram|histogram)|OBS_SCOPED_TIMER|OBS_TIMED_SPAN)\s*\(\s*"([^"]+)\")");

  std::vector<Hit> unregistered;
  std::size_t sites = 0;
  std::size_t files = 0;
  for (const char* subdir : {"src", "bench", "tools", "examples"}) {
    const fs::path dir = root / subdir;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !is_source_file(entry.path())) {
        continue;
      }
      // The lint's own pattern table would read as call sites.
      if (entry.path().filename() == "metric_lint.cpp") continue;
      std::ifstream in(entry.path());
      if (!in) {
        std::fprintf(stderr, "metric_lint: cannot read %s\n",
                     entry.path().string().c_str());
        return 2;
      }
      ++files;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      std::string line;
      std::size_t line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        // Line comments often quote example names; don't lint them.
        const std::size_t comment = line.find("//");
        if (comment != std::string::npos) line.resize(comment);
        auto it = std::sregex_iterator(line.begin(), line.end(), site);
        for (; it != std::sregex_iterator(); ++it) {
          const std::string name = (*it)[1].str();
          ++sites;
          if (carpool::obs::find_metric_meta(name) == nullptr) {
            unregistered.push_back(Hit{rel, line_no, name});
          }
        }
      }
    }
  }

  if (files == 0) {
    std::fprintf(stderr, "metric_lint: no sources under %s\n",
                 root.string().c_str());
    return 2;
  }
  if (!unregistered.empty()) {
    std::sort(unregistered.begin(), unregistered.end(),
              [](const Hit& a, const Hit& b) {
                return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
    std::fprintf(stderr,
                 "metric_lint: %zu metric name(s) missing from the "
                 "metadata catalog (src/obs/metrics_meta.cpp):\n",
                 unregistered.size());
    for (const Hit& hit : unregistered) {
      std::fprintf(stderr, "  %s:%zu: \"%s\"\n", hit.file.c_str(), hit.line,
                   hit.name.c_str());
    }
    std::fprintf(stderr,
                 "add a CatalogEntry (unit, layer, description) for each, "
                 "or a `prefix*` family entry for generated names\n");
    return 1;
  }
  std::printf("metric_lint: %zu site(s) across %zu file(s), all "
              "registered\n",
              sites, files);
  return 0;
}
