// bench_diff — compare BENCH_*.json metric exports (schema_version 2,
// written by bench::write_metrics / obs::Registry) against a baseline.
//
//   bench_diff <baseline_dir> <current_dir> [--threshold <pct>]
//                                           [--sigma <k>]
//
// The baseline directory holds either flat BENCH_*.json files (one
// reference run) or run*/ subdirectories each holding BENCH_*.json (a
// set of repeated reference runs). With multiple runs the tool measures
// per-metric baseline variance and derives each metric's tolerance as
//
//   tolerance_pct = max(threshold, sigma * cv_pct)
//
// where cv_pct is the coefficient of variation (stddev/|mean| * 100)
// across the baseline runs — a metric that wobbles 2% run to run gets a
// wider gate than one that is bit-reproducible. Exit status is nonzero
// when a *gated* metric regressed beyond its tolerance:
//
//   - goodput/throughput metrics (name contains "goodput", "throughput")
//     gate on decreases;
//   - latency/delay metrics (name contains "latency" or "delay") gate on
//     increases. This is deliberately restricted to simulated-time
//     metrics: wall-clock profiling histograms (phy.*, fec.*, ...) vary
//     with the host and stay informational, p99 included.
//
// Everything else is informational: counters like retry totals move with
// scenario tweaks and should not fail CI. The CI workflow runs this as a
// BLOCKING step against the committed baselines in bench/baselines/
// (run1..run5); refresh those by re-running the bench binaries five
// times and copying each run's BENCH_*.json into its run directory.
//
// The flattening/aggregation/tolerance machinery is shared with
// bench_report (the trend dashboard) via bench_compare.hpp.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_compare.hpp"

namespace {

namespace fs = std::filesystem;
using namespace carpool::benchcmp;

struct Regression {
  std::string file;
  std::string metric;
  double baseline;
  double current;
  double change_pct;
  double tolerance_pct;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  double sigma = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    } else if (arg == "--sigma" && i + 1 < argc) {
      sigma = std::stod(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: bench_diff <baseline_dir> <current_dir> "
          "[--threshold <pct>] [--sigma <k>]\n");
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline_dir> <current_dir> "
                 "[--threshold <pct>] [--sigma <k>]\n");
    return 2;
  }
  const fs::path baseline_dir = positional[0];
  const fs::path current_dir = positional[1];
  if (!fs::is_directory(baseline_dir) || !fs::is_directory(current_dir)) {
    std::fprintf(stderr, "bench_diff: both arguments must be directories\n");
    return 2;
  }

  const std::vector<fs::path> run_dirs = discover_run_dirs(baseline_dir);
  const std::vector<std::string> files = discover_bench_files(run_dirs);
  if (files.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }
  std::printf("baseline: %zu run(s) under %s\n", run_dirs.size(),
              baseline_dir.string().c_str());

  std::vector<Regression> regressions;
  std::size_t compared_files = 0;
  for (const std::string& name : files) {
    const fs::path cur_path = current_dir / name;
    if (!fs::exists(cur_path)) {
      std::printf("%s: missing from %s (skipped)\n", name.c_str(),
                  current_dir.string().c_str());
      continue;
    }
    const auto base = aggregate_baseline(run_dirs, name);
    const auto cur = load_metrics(cur_path);
    if (base.empty() || !cur) {
      std::fprintf(stderr, "%s: parse failure (skipped)\n", name.c_str());
      continue;
    }
    ++compared_files;
    std::printf("\n== %s ==\n", name.c_str());
    std::printf("%-52s %14s %14s %9s %8s\n", "metric", "baseline", "current",
                "delta", "tol");
    for (const auto& [metric, stat] : base) {
      if (!reportable(metric)) continue;
      const auto it = cur->find(metric);
      if (it == cur->end()) {
        std::printf("%-52s %14.6g %14s\n", metric.c_str(), stat.mean,
                    "(gone)");
        continue;
      }
      const double cur_value = it->second;
      const double denom = std::abs(stat.mean);
      const double change_pct =
          denom > 0.0 ? 100.0 * (cur_value - stat.mean) / denom
                      : (cur_value == stat.mean ? 0.0 : 100.0);
      const Gate gate = gate_for(metric);
      const double tolerance_pct =
          std::max(threshold_pct, sigma * stat.cv_pct);
      const bool regressed =
          (gate == Gate::kHigherBetter && change_pct < -tolerance_pct) ||
          (gate == Gate::kLowerBetter && change_pct > tolerance_pct);
      if (gate != Gate::kNone) {
        std::printf("%-52s %14.6g %14.6g %+8.2f%% %7.1f%%%s\n",
                    metric.c_str(), stat.mean, cur_value, change_pct,
                    tolerance_pct, regressed ? "  REGRESSION" : "  (gated)");
      } else {
        std::printf("%-52s %14.6g %14.6g %+8.2f%%\n", metric.c_str(),
                    stat.mean, cur_value, change_pct);
      }
      if (regressed) {
        regressions.push_back(Regression{name, metric, stat.mean, cur_value,
                                         change_pct, tolerance_pct});
      }
    }
    for (const auto& [metric, cur_value] : *cur) {
      if (reportable(metric) && base.find(metric) == base.end()) {
        std::printf("%-52s %14s %14.6g\n", metric.c_str(), "(new)",
                    cur_value);
      }
    }
  }

  if (compared_files == 0) {
    std::fprintf(stderr, "bench_diff: nothing compared\n");
    return 2;
  }
  if (!regressions.empty()) {
    std::printf("\n%zu regression(s) beyond tolerance:\n",
                regressions.size());
    for (const Regression& r : regressions) {
      std::printf("  %s %s: %.6g -> %.6g (%+.2f%%, tolerance %.1f%%)\n",
                  r.file.c_str(), r.metric.c_str(), r.baseline, r.current,
                  r.change_pct, r.tolerance_pct);
    }
    return 1;
  }
  std::printf(
      "\nno gated regressions (floor %.1f%%, sigma %.1f, %zu file(s))\n",
      threshold_pct, sigma, compared_files);
  return 0;
}
