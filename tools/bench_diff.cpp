// bench_diff — compare BENCH_*.json metric exports (schema_version 1,
// written by bench::write_metrics / obs::Registry) against a baseline.
//
//   bench_diff <baseline_dir> <current_dir> [--threshold <pct>]
//                                           [--sigma <k>]
//
// The baseline directory holds either flat BENCH_*.json files (one
// reference run) or run*/ subdirectories each holding BENCH_*.json (a
// set of repeated reference runs). With multiple runs the tool measures
// per-metric baseline variance and derives each metric's tolerance as
//
//   tolerance_pct = max(threshold, sigma * cv_pct)
//
// where cv_pct is the coefficient of variation (stddev/|mean| * 100)
// across the baseline runs — a metric that wobbles 2% run to run gets a
// wider gate than one that is bit-reproducible. Exit status is nonzero
// when a *gated* metric regressed beyond its tolerance:
//
//   - goodput/throughput metrics (name contains "goodput", "throughput")
//     gate on decreases;
//   - latency/delay metrics (name contains "latency" or "delay") gate on
//     increases. This is deliberately restricted to simulated-time
//     metrics: wall-clock profiling histograms (phy.*, fec.*, ...) vary
//     with the host and stay informational, p99 included.
//
// Everything else is informational: counters like retry totals move with
// scenario tweaks and should not fail CI. The CI workflow runs this as a
// BLOCKING step against the committed baselines in bench/baselines/
// (run1..run5); refresh those by re-running the bench binaries five
// times and copying each run's BENCH_*.json into its run directory.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ JSON
// Minimal recursive-descent parser for the flat metrics schema. Values we
// care about are numbers; everything else (strings, bools, null) is parsed
// and discarded.

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  explicit JsonParser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      failed = true;
      return std::nullopt;
    }
    ++pos;  // closing quote
    return out;
  }

  std::optional<double> parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            std::strchr("+-.eE", text[pos]) != nullptr)) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    try {
      return std::stod(text.substr(start, pos - start));
    } catch (...) {
      failed = true;
      return std::nullopt;
    }
  }

  /// Parse any value; numeric leaves land in `out` under `prefix`.
  void parse_value(const std::string& prefix,
                   std::map<std::string, double>& out) {
    const char c = peek();
    if (c == '{') {
      consume('{');
      if (consume('}')) return;
      do {
        const auto key = parse_string();
        if (!key || !consume(':')) {
          failed = true;
          return;
        }
        parse_value(prefix.empty() ? *key : prefix + "." + *key, out);
        if (failed) return;
      } while (consume(','));
      if (!consume('}')) failed = true;
    } else if (c == '[') {
      consume('[');
      if (consume(']')) return;
      std::map<std::string, double> discard;  // bucket arrays: not diffed
      do {
        parse_value(prefix, discard);
        if (failed) return;
      } while (consume(','));
      if (!consume(']')) failed = true;
    } else if (c == '"') {
      if (!parse_string()) failed = true;
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    } else {
      const auto num = parse_number();
      if (!num) {
        failed = true;
        return;
      }
      out[prefix] = *num;
    }
  }
};

/// Flatten one metrics file: "counters.x", "gauges.y",
/// "histograms.z.mean", ... -> value.
std::optional<std::map<std::string, double>> load_metrics(
    const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text);
  std::map<std::string, double> flat;
  parser.parse_value("", flat);
  if (parser.failed) return std::nullopt;
  flat.erase("schema_version");
  return flat;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

enum class Gate { kNone, kHigherBetter, kLowerBetter };

Gate gate_for(const std::string& metric) {
  if (contains(metric, "goodput") || contains(metric, "throughput")) {
    return Gate::kHigherBetter;
  }
  // Simulated-time latency metrics only: wall-clock profiling histograms
  // (phy.fft and friends) vary with the CI host and must not block.
  if (contains(metric, "latency") || contains(metric, "delay")) {
    return Gate::kLowerBetter;
  }
  return Gate::kNone;
}

/// Baseline statistics for one metric across the reference runs.
struct BaselineStat {
  double mean = 0.0;
  double cv_pct = 0.0;  ///< 100 * stddev / |mean|; 0 for a single run
  std::size_t runs = 0;
};

/// Aggregate one BENCH file's metrics over every baseline run directory
/// that has it. Missing-from-some-runs metrics keep the runs they have.
std::map<std::string, BaselineStat> aggregate_baseline(
    const std::vector<fs::path>& run_dirs, const std::string& file_name) {
  std::map<std::string, std::vector<double>> samples;
  for (const fs::path& dir : run_dirs) {
    const fs::path path = dir / file_name;
    if (!fs::exists(path)) continue;
    const auto metrics = load_metrics(path);
    if (!metrics) continue;
    for (const auto& [metric, value] : *metrics) {
      samples[metric].push_back(value);
    }
  }
  std::map<std::string, BaselineStat> out;
  for (const auto& [metric, values] : samples) {
    BaselineStat stat;
    stat.runs = values.size();
    for (const double v : values) stat.mean += v;
    stat.mean /= static_cast<double>(values.size());
    if (values.size() > 1 && std::abs(stat.mean) > 0.0) {
      double ss = 0.0;
      for (const double v : values) {
        ss += (v - stat.mean) * (v - stat.mean);
      }
      const double stddev =
          std::sqrt(ss / static_cast<double>(values.size() - 1));
      stat.cv_pct = 100.0 * stddev / std::abs(stat.mean);
    }
    out[metric] = stat;
  }
  return out;
}

/// Keep the diff table readable: histogram internals other than mean/p99
/// (count, sum, min, max, bucket edges) are noise.
bool reportable(const std::string& metric) {
  if (!contains(metric, "histograms.")) return true;
  return contains(metric, ".mean") || contains(metric, ".p99");
}

struct Regression {
  std::string file;
  std::string metric;
  double baseline;
  double current;
  double change_pct;
  double tolerance_pct;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  double sigma = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    } else if (arg == "--sigma" && i + 1 < argc) {
      sigma = std::stod(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: bench_diff <baseline_dir> <current_dir> "
          "[--threshold <pct>] [--sigma <k>]\n");
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline_dir> <current_dir> "
                 "[--threshold <pct>] [--sigma <k>]\n");
    return 2;
  }
  const fs::path baseline_dir = positional[0];
  const fs::path current_dir = positional[1];
  if (!fs::is_directory(baseline_dir) || !fs::is_directory(current_dir)) {
    std::fprintf(stderr, "bench_diff: both arguments must be directories\n");
    return 2;
  }

  // Baseline layout: run*/ subdirectories of repeated reference runs, or
  // (legacy) flat BENCH_*.json in the baseline dir itself = a single run.
  std::vector<fs::path> run_dirs;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("run", 0) == 0) {
      run_dirs.push_back(entry.path());
    }
  }
  std::sort(run_dirs.begin(), run_dirs.end());
  if (run_dirs.empty()) run_dirs.push_back(baseline_dir);

  auto is_bench_file = [](const std::string& name) {
    return name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
           name.substr(name.size() - 5) == ".json";
  };
  std::vector<std::string> files;
  for (const fs::path& dir : run_dirs) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && is_bench_file(name) &&
          std::find(files.begin(), files.end(), name) == files.end()) {
        files.push_back(name);
      }
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }
  std::printf("baseline: %zu run(s) under %s\n", run_dirs.size(),
              baseline_dir.string().c_str());

  std::vector<Regression> regressions;
  std::size_t compared_files = 0;
  for (const std::string& name : files) {
    const fs::path cur_path = current_dir / name;
    if (!fs::exists(cur_path)) {
      std::printf("%s: missing from %s (skipped)\n", name.c_str(),
                  current_dir.string().c_str());
      continue;
    }
    const auto base = aggregate_baseline(run_dirs, name);
    const auto cur = load_metrics(cur_path);
    if (base.empty() || !cur) {
      std::fprintf(stderr, "%s: parse failure (skipped)\n", name.c_str());
      continue;
    }
    ++compared_files;
    std::printf("\n== %s ==\n", name.c_str());
    std::printf("%-52s %14s %14s %9s %8s\n", "metric", "baseline", "current",
                "delta", "tol");
    for (const auto& [metric, stat] : base) {
      if (!reportable(metric)) continue;
      const auto it = cur->find(metric);
      if (it == cur->end()) {
        std::printf("%-52s %14.6g %14s\n", metric.c_str(), stat.mean,
                    "(gone)");
        continue;
      }
      const double cur_value = it->second;
      const double denom = std::abs(stat.mean);
      const double change_pct =
          denom > 0.0 ? 100.0 * (cur_value - stat.mean) / denom
                      : (cur_value == stat.mean ? 0.0 : 100.0);
      const Gate gate = gate_for(metric);
      const double tolerance_pct =
          std::max(threshold_pct, sigma * stat.cv_pct);
      const bool regressed =
          (gate == Gate::kHigherBetter && change_pct < -tolerance_pct) ||
          (gate == Gate::kLowerBetter && change_pct > tolerance_pct);
      if (gate != Gate::kNone) {
        std::printf("%-52s %14.6g %14.6g %+8.2f%% %7.1f%%%s\n",
                    metric.c_str(), stat.mean, cur_value, change_pct,
                    tolerance_pct, regressed ? "  REGRESSION" : "  (gated)");
      } else {
        std::printf("%-52s %14.6g %14.6g %+8.2f%%\n", metric.c_str(),
                    stat.mean, cur_value, change_pct);
      }
      if (regressed) {
        regressions.push_back(Regression{name, metric, stat.mean, cur_value,
                                         change_pct, tolerance_pct});
      }
    }
    for (const auto& [metric, cur_value] : *cur) {
      if (reportable(metric) && base.find(metric) == base.end()) {
        std::printf("%-52s %14s %14.6g\n", metric.c_str(), "(new)",
                    cur_value);
      }
    }
  }

  if (compared_files == 0) {
    std::fprintf(stderr, "bench_diff: nothing compared\n");
    return 2;
  }
  if (!regressions.empty()) {
    std::printf("\n%zu regression(s) beyond tolerance:\n",
                regressions.size());
    for (const Regression& r : regressions) {
      std::printf("  %s %s: %.6g -> %.6g (%+.2f%%, tolerance %.1f%%)\n",
                  r.file.c_str(), r.metric.c_str(), r.baseline, r.current,
                  r.change_pct, r.tolerance_pct);
    }
    return 1;
  }
  std::printf(
      "\nno gated regressions (floor %.1f%%, sigma %.1f, %zu file(s))\n",
      threshold_pct, sigma, compared_files);
  return 0;
}
