// bench_diff — compare two directories of BENCH_*.json metric exports
// (schema_version 1, written by bench::write_metrics / obs::Registry).
//
//   bench_diff <baseline_dir> <current_dir> [--threshold <pct>]
//
// For every BENCH_<name>.json present in the baseline directory the tool
// loads the matching file from the current directory and prints per-metric
// deltas (counters, gauges, and the mean/p99 of every histogram). Exit
// status is nonzero when a *gated* metric regressed by more than the
// threshold (default 10%):
//
//   - goodput/throughput metrics (name contains "goodput", "throughput")
//     gate on decreases;
//   - latency/delay metrics (name contains "latency", "delay", or a
//     histogram's p99) gate on increases.
//
// Everything else is informational: counters like retry totals move with
// scenario tweaks and should not fail CI. The CI workflow runs this as an
// informational step (continue-on-error) against the committed baselines
// in bench/baselines/; refresh those by copying the BENCH_*.json from a
// trusted local run.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ JSON
// Minimal recursive-descent parser for the flat metrics schema. Values we
// care about are numbers; everything else (strings, bools, null) is parsed
// and discarded.

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  bool failed = false;

  explicit JsonParser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out.push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      failed = true;
      return std::nullopt;
    }
    ++pos;  // closing quote
    return out;
  }

  std::optional<double> parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            std::strchr("+-.eE", text[pos]) != nullptr)) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    try {
      return std::stod(text.substr(start, pos - start));
    } catch (...) {
      failed = true;
      return std::nullopt;
    }
  }

  /// Parse any value; numeric leaves land in `out` under `prefix`.
  void parse_value(const std::string& prefix,
                   std::map<std::string, double>& out) {
    const char c = peek();
    if (c == '{') {
      consume('{');
      if (consume('}')) return;
      do {
        const auto key = parse_string();
        if (!key || !consume(':')) {
          failed = true;
          return;
        }
        parse_value(prefix.empty() ? *key : prefix + "." + *key, out);
        if (failed) return;
      } while (consume(','));
      if (!consume('}')) failed = true;
    } else if (c == '[') {
      consume('[');
      if (consume(']')) return;
      std::map<std::string, double> discard;  // bucket arrays: not diffed
      do {
        parse_value(prefix, discard);
        if (failed) return;
      } while (consume(','));
      if (!consume(']')) failed = true;
    } else if (c == '"') {
      if (!parse_string()) failed = true;
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos < text.size() &&
             std::isalpha(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    } else {
      const auto num = parse_number();
      if (!num) {
        failed = true;
        return;
      }
      out[prefix] = *num;
    }
  }
};

/// Flatten one metrics file: "counters.x", "gauges.y",
/// "histograms.z.mean", ... -> value.
std::optional<std::map<std::string, double>> load_metrics(
    const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonParser parser(text);
  std::map<std::string, double> flat;
  parser.parse_value("", flat);
  if (parser.failed) return std::nullopt;
  flat.erase("schema_version");
  return flat;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

enum class Gate { kNone, kHigherBetter, kLowerBetter };

Gate gate_for(const std::string& metric) {
  if (contains(metric, "goodput") || contains(metric, "throughput")) {
    return Gate::kHigherBetter;
  }
  if (contains(metric, "latency") || contains(metric, "delay") ||
      (contains(metric, "histograms.") && contains(metric, ".p99"))) {
    return Gate::kLowerBetter;
  }
  return Gate::kNone;
}

/// Keep the diff table readable: histogram internals other than mean/p99
/// (count, sum, min, max, bucket edges) are noise.
bool reportable(const std::string& metric) {
  if (!contains(metric, "histograms.")) return true;
  return contains(metric, ".mean") || contains(metric, ".p99");
}

struct Regression {
  std::string file;
  std::string metric;
  double baseline;
  double current;
  double change_pct;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::stod(argv[++i]);
    } else if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: bench_diff <baseline_dir> <current_dir> "
          "[--threshold <pct>]\n");
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline_dir> <current_dir> "
                 "[--threshold <pct>]\n");
    return 2;
  }
  const fs::path baseline_dir = positional[0];
  const fs::path current_dir = positional[1];
  if (!fs::is_directory(baseline_dir) || !fs::is_directory(current_dir)) {
    std::fprintf(stderr, "bench_diff: both arguments must be directories\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }

  std::vector<Regression> regressions;
  std::size_t compared_files = 0;
  for (const fs::path& base_path : files) {
    const std::string name = base_path.filename().string();
    const fs::path cur_path = current_dir / name;
    if (!fs::exists(cur_path)) {
      std::printf("%s: missing from %s (skipped)\n", name.c_str(),
                  current_dir.string().c_str());
      continue;
    }
    const auto base = load_metrics(base_path);
    const auto cur = load_metrics(cur_path);
    if (!base || !cur) {
      std::fprintf(stderr, "%s: parse failure (skipped)\n", name.c_str());
      continue;
    }
    ++compared_files;
    std::printf("\n== %s ==\n", name.c_str());
    std::printf("%-52s %14s %14s %9s\n", "metric", "baseline", "current",
                "delta");
    for (const auto& [metric, base_value] : *base) {
      if (!reportable(metric)) continue;
      const auto it = cur->find(metric);
      if (it == cur->end()) {
        std::printf("%-52s %14.6g %14s\n", metric.c_str(), base_value,
                    "(gone)");
        continue;
      }
      const double cur_value = it->second;
      const double denom = std::abs(base_value);
      const double change_pct =
          denom > 0.0 ? 100.0 * (cur_value - base_value) / denom
                      : (cur_value == base_value ? 0.0 : 100.0);
      const Gate gate = gate_for(metric);
      const bool regressed =
          (gate == Gate::kHigherBetter && change_pct < -threshold_pct) ||
          (gate == Gate::kLowerBetter && change_pct > threshold_pct);
      std::printf("%-52s %14.6g %14.6g %+8.2f%%%s\n", metric.c_str(),
                  base_value, cur_value, change_pct,
                  regressed            ? "  REGRESSION"
                  : gate != Gate::kNone ? "  (gated)"
                                        : "");
      if (regressed) {
        regressions.push_back(
            Regression{name, metric, base_value, cur_value, change_pct});
      }
    }
    for (const auto& [metric, cur_value] : *cur) {
      if (reportable(metric) && base->find(metric) == base->end()) {
        std::printf("%-52s %14s %14.6g\n", metric.c_str(), "(new)",
                    cur_value);
      }
    }
  }

  if (compared_files == 0) {
    std::fprintf(stderr, "bench_diff: nothing compared\n");
    return 2;
  }
  if (!regressions.empty()) {
    std::printf("\n%zu regression(s) beyond %.1f%%:\n", regressions.size(),
                threshold_pct);
    for (const Regression& r : regressions) {
      std::printf("  %s %s: %.6g -> %.6g (%+.2f%%)\n", r.file.c_str(),
                  r.metric.c_str(), r.baseline, r.current, r.change_pct);
    }
    return 1;
  }
  std::printf("\nno gated regressions beyond %.1f%% (%zu file(s))\n",
              threshold_pct, compared_files);
  return 0;
}
