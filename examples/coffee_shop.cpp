// Coffee-shop scenario: one AP serving a crowd of stations running VoIP
// calls plus web-browsing background traffic — the "large audience
// environment" the paper opens with. Runs the MAC simulator with every
// scheme and prints a side-by-side comparison of goodput, delay, airtime
// breakdown and per-station energy.

#include <cstdio>

#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

namespace {

SimResult run(Scheme scheme, std::size_t stas) {
  SimConfig cfg;
  cfg.scheme = scheme;
  cfg.num_stas = stas;
  cfg.duration = 10.0;
  cfg.seed = 31337;
  cfg.default_snr_db = 26.0;
  cfg.coherence_time = 3e-3;
  Simulator sim(cfg);
  for (NodeId sta = 1; sta <= stas; ++sta) {
    // Every patron is on a call...
    for (auto& flow :
         traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
      sim.add_flow(std::move(flow));
    }
    // ...and browsing on the side (SIGCOMM-like uplink requests plus
    // downlink responses).
    for (auto& flow : traffic::make_sigcomm_background(sta)) {
      sim.add_flow(std::move(flow));
    }
    sim.add_flow(traffic::make_poisson_flow(
        sta, 0.20, traffic::TraceKind::kSigcomm, /*uplink=*/false));
  }
  return sim.run();
}

}  // namespace

int main() {
  constexpr std::size_t kStas = 32;
  std::printf("Coffee shop: 1 AP, %zu stations, VoIP + web traffic, 10 s\n\n",
              kStas);
  std::printf("%16s %9s %8s %8s %7s %7s %9s %9s %7s\n", "scheme",
              "goodput", "delay", "p95", "coll", "aggr", "STA mJ/s", "drop",
              "Jain");

  for (const Scheme scheme :
       {Scheme::kCarpool, Scheme::kMuAggregation, Scheme::kAmpdu,
        Scheme::kWiFox, Scheme::kDcf80211}) {
    const SimResult r = run(scheme, kStas);
    double sta_energy = 0.0;
    for (std::size_t sta = 1; sta < r.node_energy.size(); ++sta) {
      sta_energy += r.node_energy[sta].joules;
    }
    sta_energy /= static_cast<double>(r.node_energy.size() - 1) * r.duration;
    std::printf("%16s %7.2fMb %7.3fs %7.3fs %7lu %7.2f %9.0f %9lu %7.3f\n",
                scheme_name(scheme).data(), r.downlink_goodput_bps / 1e6,
                r.mean_delay_s, r.p95_delay_s,
                static_cast<unsigned long>(r.collisions),
                r.avg_aggregated_receivers, sta_energy * 1e3,
                static_cast<unsigned long>(r.dl_frames_dropped),
                r.jain_fairness);
  }

  std::printf("\nAirtime breakdown for Carpool vs 802.11:\n");
  for (const Scheme scheme : {Scheme::kCarpool, Scheme::kDcf80211}) {
    const SimResult r = run(scheme, kStas);
    std::printf("%16s  payload %4.1f%%  overhead %4.1f%%  collisions %4.1f%%"
                "  idle %4.1f%%\n",
                scheme_name(scheme).data(),
                100 * r.airtime_payload / r.duration,
                100 * r.airtime_overhead / r.duration,
                100 * r.airtime_collision / r.duration,
                100 * r.airtime_idle / r.duration);
  }
  return 0;
}
