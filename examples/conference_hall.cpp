// Conference-hall scenario, trace-driven end to end: synthesize a
// public-WLAN trace with the paper's measured statistics (Sec. 2), build a
// trace-driven PHY error model by running real Carpool frames through the
// OFDM simulator (the paper's Sec. 7.2 methodology), then evaluate the MAC
// schemes under that model.

#include <cstdio>
#include <memory>

#include "mac/simulator.hpp"
#include "sim/phy_trace.hpp"
#include "sim/testbed.hpp"
#include "traffic/generators.hpp"
#include "traffic/trace_synth.hpp"

using namespace carpool;
using namespace carpool::mac;

int main() {
  // 1. Characterize the venue (Fig. 1 statistics).
  traffic::TraceSynthConfig trace_cfg;
  trace_cfg.downlink_ratio = 0.834;  // SIGCOMM'08
  trace_cfg.sizes = traffic::TraceKind::kSigcomm;
  const traffic::SyntheticTrace trace = traffic::synthesize_trace(trace_cfg);
  std::printf("Synthesized venue: %zu STAs across %zu APs, mean %.1f "
              "active/AP, downlink ratio %.1f%%\n",
              trace.total_stas, trace_cfg.num_aps, trace.mean_active_stas,
              100.0 * trace.downlink_ratio());

  // 2. Trace-driven PHY: run real frames through the bit-exact PHY to
  //    tabulate subframe error behaviour (takes a few seconds).
  std::printf("\nGenerating PHY traces from the OFDM simulator...\n");
  sim::PhyTraceConfig phy_cfg;
  phy_cfg.snr_grid_db = {24, 30, 36};
  phy_cfg.frames_per_point = 6;
  phy_cfg.subframes_per_frame = 3;
  phy_cfg.subframe_bytes = 600;
  const auto phy = std::make_shared<sim::TracePhyModel>(
      sim::TracePhyModel::generate(phy_cfg));
  std::printf("  symbol-failure (SNR 24 dB): head %.3f -> tail %.3f "
              "(standard) vs %.3f -> %.3f (RTE)\n",
              phy->symbol_failure(24, false, 0),
              phy->symbol_failure(24, false, 80),
              phy->symbol_failure(24, true, 0),
              phy->symbol_failure(24, true, 80));

  // 3. STA link SNRs from the Fig. 10 office layout at 0.1 power.
  const sim::TestbedLayout layout;
  const std::size_t stas = 36;
  std::vector<double> snrs;
  for (std::size_t i = 0; i < stas; ++i) {
    snrs.push_back(layout.snr_db(i % sim::TestbedLayout::kNumLocations, 0.1));
  }

  // 4. Evaluate the schemes on the busy hall.
  std::printf("\n%16s %10s %9s %9s\n", "scheme", "goodput", "delay",
              "PHY loss");
  for (const Scheme scheme :
       {Scheme::kCarpool, Scheme::kMuAggregation, Scheme::kAmpdu,
        Scheme::kWiFox, Scheme::kDcf80211}) {
    SimConfig cfg;
    cfg.scheme = scheme;
    cfg.num_stas = stas;
    cfg.duration = 8.0;
    cfg.seed = 11;
    cfg.sta_snr_db = snrs;
    cfg.coherence_time = 3e-3;
    cfg.phy = phy;
    Simulator sim_run(cfg);
    for (NodeId sta = 1; sta <= stas; ++sta) {
      for (auto& flow :
           traffic::make_voip_call(sta, traffic::VoipParams::near_peak())) {
        sim_run.add_flow(std::move(flow));
      }
      for (auto& flow : traffic::make_sigcomm_background(sta)) {
        sim_run.add_flow(std::move(flow));
      }
    }
    const SimResult r = sim_run.run();
    std::printf("%16s %8.2fMb %8.3fs %9lu\n", scheme_name(scheme).data(),
                r.downlink_goodput_bps / 1e6, r.mean_delay_s,
                static_cast<unsigned long>(r.subframe_failures));
  }
  return 0;
}
