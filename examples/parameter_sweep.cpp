// Parameter sweep to CSV: run the MAC simulator over a grid of
// (scheme, station count, seed) and emit machine-readable rows — the shape
// downstream users need for plotting their own Fig. 15-style curves.
//
//   ./parameter_sweep [out.csv]          (default: stdout)

#include <cstdio>
#include <memory>

#include "mac/simulator.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

int main(int argc, char** argv) {
  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }

  std::fprintf(out,
               "scheme,stas,seed,goodput_mbps,mean_delay_s,p95_delay_s,"
               "collisions,tx_attempts,subframe_failures,delivered,dropped,"
               "avg_aggregated,airtime_payload,airtime_overhead,"
               "airtime_collision,airtime_idle\n");

  const Scheme schemes[] = {Scheme::kCarpool, Scheme::kMuAggregation,
                            Scheme::kAmpdu, Scheme::kDcf80211,
                            Scheme::kWiFox};
  for (std::size_t n = 10; n <= 46; n += 12) {
    for (const Scheme scheme : schemes) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SimConfig cfg;
        cfg.scheme = scheme;
        cfg.num_stas = n;
        cfg.duration = 8.0;
        cfg.seed = seed;
        cfg.default_snr_db = 26.0;
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= n; ++sta) {
          for (auto& flow : traffic::make_voip_call(
                   sta, traffic::VoipParams::near_peak())) {
            sim.add_flow(std::move(flow));
          }
        }
        const SimResult r = sim.run();
        std::fprintf(
            out,
            "%s,%zu,%llu,%.4f,%.5f,%.5f,%llu,%llu,%llu,%llu,%llu,%.3f,"
            "%.4f,%.4f,%.4f,%.4f\n",
            scheme_name(scheme).data(), n,
            static_cast<unsigned long long>(seed),
            r.downlink_goodput_bps / 1e6, r.mean_delay_s, r.p95_delay_s,
            static_cast<unsigned long long>(r.collisions),
            static_cast<unsigned long long>(r.tx_attempts),
            static_cast<unsigned long long>(r.subframe_failures),
            static_cast<unsigned long long>(r.dl_frames_delivered),
            static_cast<unsigned long long>(r.dl_frames_dropped),
            r.avg_aggregated_receivers, r.airtime_payload,
            r.airtime_overhead, r.airtime_collision, r.airtime_idle);
      }
    }
  }
  if (out != stdout) std::fclose(out);
  return 0;
}
