// Parameter sweep to CSV: run the MAC simulator over a grid of
// (scheme, station count, seed) and emit machine-readable rows — the shape
// downstream users need for plotting their own Fig. 15-style curves.
//
//   ./parameter_sweep [out.csv]                (default: stdout)
//   ./parameter_sweep --link-policy [out.csv]
//   ./parameter_sweep --threads 0 out.csv      (all cores, same CSV)
//   ./parameter_sweep --kernel scalar out.csv  (pin the DSP backend)
//
// Grid points fan across carpool::par workers (--threads N /
// CARPOOL_THREADS, docs/PARALLELISM.md); rows are emitted in grid order
// after the sharded run, so the CSV is byte-identical at any thread
// count.
//
// The --link-policy mode sweeps the LinkPolicyConfig hysteresis axes
// instead (down_after x up_after x probe backoff, docs/LINK_STATE.md)
// under Gilbert-Elliott bursts, and appends a per-STA MCS decision trace —
// every link-state transition with the rate in force after it — so policy
// tuning can be eyeballed from one CSV.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dsp/kernels.hpp"
#include "mac/simulator.hpp"
#include "par/par.hpp"
#include "traffic/generators.hpp"

using namespace carpool;
using namespace carpool::mac;

namespace {

std::size_t g_threads = 1;

/// printf into a std::string (rows are formatted inside shard jobs and
/// written to the CSV in grid order afterwards).
template <class... Args>
std::string rowf(const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

void sweep_schemes(std::FILE* out) {
  std::fprintf(out,
               "scheme,stas,seed,goodput_mbps,mean_delay_s,p95_delay_s,"
               "collisions,tx_attempts,subframe_failures,delivered,dropped,"
               "avg_aggregated,airtime_payload,airtime_overhead,"
               "airtime_collision,airtime_idle\n");

  const Scheme schemes[] = {Scheme::kCarpool, Scheme::kMuAggregation,
                            Scheme::kAmpdu, Scheme::kDcf80211,
                            Scheme::kWiFox};
  struct Point {
    std::size_t n;
    Scheme scheme;
    std::uint64_t seed;
  };
  std::vector<Point> grid;
  for (std::size_t n = 10; n <= 46; n += 12) {
    for (const Scheme scheme : schemes) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        grid.push_back({n, scheme, seed});
      }
    }
  }
  const auto rows = par::run_sharded(
      grid.size(), g_threads, [&](const par::ShardInfo& info) {
        const Point& pt = grid[info.index];
        SimConfig cfg;
        cfg.scheme = pt.scheme;
        cfg.num_stas = pt.n;
        cfg.duration = 8.0;
        cfg.seed = pt.seed;
        cfg.default_snr_db = 26.0;
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= pt.n; ++sta) {
          for (auto& flow : traffic::make_voip_call(
                   sta, traffic::VoipParams::near_peak())) {
            sim.add_flow(std::move(flow));
          }
        }
        const SimResult r = sim.run();
        return rowf(
            "%s,%zu,%llu,%.4f,%.5f,%.5f,%llu,%llu,%llu,%llu,%llu,%.3f,"
            "%.4f,%.4f,%.4f,%.4f\n",
            scheme_name(pt.scheme).data(), pt.n,
            static_cast<unsigned long long>(pt.seed),
            r.downlink_goodput_bps / 1e6, r.mean_delay_s, r.p95_delay_s,
            static_cast<unsigned long long>(r.collisions),
            static_cast<unsigned long long>(r.tx_attempts),
            static_cast<unsigned long long>(r.subframe_failures),
            static_cast<unsigned long long>(r.dl_frames_delivered),
            static_cast<unsigned long long>(r.dl_frames_dropped),
            r.avg_aggregated_receivers, r.airtime_payload,
            r.airtime_overhead, r.airtime_collision, r.airtime_idle);
      });
  for (const std::string& row : rows) std::fputs(row.c_str(), out);
}

void sweep_link_policy(std::FILE* out) {
  // Bursty links with a mixed SNR population: the regime where the
  // hysteresis knobs actually move the outcome.
  constexpr std::size_t kStas = 12;

  std::fprintf(out,
               "down_after,up_after,initial_timeout_s,goodput_mbps,"
               "mean_delay_s,subframe_failures,suspensions,probes,"
               "rate_downgrades,rate_upgrades,transitions\n");

  struct Point {
    std::size_t down, up;
    double timeout;
  };
  std::vector<Point> grid;
  for (const std::size_t down_after : {1u, 3u, 6u}) {
    for (const std::size_t up_after : {4u, 10u, 20u}) {
      for (const double initial_timeout : {10e-3, 40e-3}) {
        grid.push_back({down_after, up_after, initial_timeout});
      }
    }
  }

  struct PolicyRun {
    std::string row;
    std::vector<LinkTransition> log;
  };
  const auto runs = par::run_sharded(
      grid.size(), g_threads, [&](const par::ShardInfo& info) {
        const Point& pt = grid[info.index];
        SimConfig cfg;
        cfg.scheme = Scheme::kCarpool;
        cfg.num_stas = kStas;
        cfg.duration = 6.0;
        cfg.seed = 21;
        for (std::size_t i = 0; i < kStas; ++i) {
          cfg.sta_snr_db.push_back(i % 2 == 0 ? 27.0 : 16.0);
        }
        cfg.link_policy.rate_adaptation = true;
        cfg.link_policy.feedback = true;
        cfg.link_policy.suspension = true;
        cfg.link_policy.down_after = pt.down;
        cfg.link_policy.up_after = pt.up;
        cfg.link_policy.initial_timeout = pt.timeout;
        cfg.link_policy.max_timeout = 16.0 * pt.timeout;
        cfg.link_policy.record_transitions = true;
        GilbertElliottPhyModel::Params ge;
        ge.p_good_to_bad = 0.08;
        ge.p_bad_to_good = 0.25;
        ge.bad_snr_penalty_db = 12.0;
        ge.period = 10e-3;
        ge.seed = 21;
        cfg.phy = std::make_shared<GilbertElliottPhyModel>(
            std::make_shared<AnalyticPhyModel>(), ge);
        Simulator sim(cfg);
        for (NodeId sta = 1; sta <= kStas; ++sta) {
          sim.add_flow(traffic::make_cbr_flow(sta, 700, 0.01));
        }
        const SimResult r = sim.run();
        PolicyRun pr;
        pr.row = rowf("%zu,%zu,%.3f,%.4f,%.5f,%llu,%llu,%llu,%llu,%llu,"
                      "%llu\n",
                      pt.down, pt.up, pt.timeout,
                      r.downlink_goodput_bps / 1e6, r.mean_delay_s,
                      static_cast<unsigned long long>(r.subframe_failures),
                      static_cast<unsigned long long>(r.lq_suspensions),
                      static_cast<unsigned long long>(r.lq_probes),
                      static_cast<unsigned long long>(r.ls_rate_downgrades),
                      static_cast<unsigned long long>(r.ls_rate_upgrades),
                      static_cast<unsigned long long>(r.ls_transitions));
        pr.log = r.link_transitions;
        return pr;
      });
  for (const PolicyRun& pr : runs) std::fputs(pr.row.c_str(), out);

  // Per-STA MCS decision trace: one row per recorded transition, tagged
  // with the policy point that produced it.
  std::fprintf(out,
               "\ntrace:down_after,up_after,initial_timeout_s,t,sta,from,to,"
               "rate_mbps\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Point& pt = grid[i];
    for (const LinkTransition& tr : runs[i].log) {
      std::fprintf(out, "trace:%zu,%zu,%.3f,%.5f,%u,%s,%s,%.1f\n", pt.down,
                   pt.up, pt.timeout, tr.time,
                   static_cast<unsigned>(tr.sta),
                   link_health_name(tr.from).data(),
                   link_health_name(tr.to).data(), tr.rate_bps / 1e6);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool link_policy = false;
  const char* path = nullptr;
  g_threads = carpool::par::resolve_threads();  // CARPOOL_THREADS or 1
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--link-policy") == 0) {
      link_policy = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads =
          carpool::par::resolve_threads(std::strtoll(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--kernel") == 0) {
      // Strict like --threads env hardening: a bad name is a usage
      // error, not a silent fallback (docs/KERNELS.md).
      const char* val = i + 1 < argc ? argv[++i] : "";
      switch (carpool::dsp::select_kernel(val)) {
        case carpool::dsp::KernelSelect::kOk:
          break;
        case carpool::dsp::KernelSelect::kUnavailable:
          std::fprintf(stderr,
                       "parameter_sweep: --kernel %s is not supported on "
                       "this CPU (%s)\n",
                       val, carpool::dsp::kernel_info().c_str());
          return 2;
        case carpool::dsp::KernelSelect::kUnknown:
          std::fprintf(stderr,
                       "parameter_sweep: --kernel wants "
                       "auto|scalar|simd|sse2|avx2|avx512, got \"%s\"\n",
                       val);
          return 2;
      }
    } else {
      path = argv[i];
    }
  }

  std::FILE* out = stdout;
  if (path != nullptr) {
    out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
  }

  if (link_policy) {
    sweep_link_policy(out);
  } else {
    sweep_schemes(out);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}
