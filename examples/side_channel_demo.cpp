// Side-channel walkthrough: watch the phase offset side channel and the
// real-time channel estimator at work on one long 64-QAM frame.
//
// The demo transmits a 4 KB subframe over a time-varying channel, then
// decodes it twice from the very same samples — once with standard
// preamble-only channel estimation, once with RTE — and prints the
// per-symbol story: measured phase deltas, decoded CRC bits, verification
// verdicts and the BER each decoder saw.

#include <cstdio>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"

using namespace carpool;

int main() {
  Rng rng(99);
  Bytes payload(4000);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  const std::vector<SubframeSpec> subframes{SubframeSpec{
      MacAddress::for_station(1), append_fcs(payload), 7}};  // QAM64

  const CarpoolTransmitter tx;
  const CxVec wave = tx.build(subframes);
  const std::vector<unsigned> injected =
      expected_side_bits(subframes[0], SymbolCrcScheme{});

  FadingConfig cfg;
  cfg.snr_db = 33.0;
  cfg.rician_los = true;
  cfg.rician_k_db = 10.0;
  cfg.coherence_time = 4.5e-3;
  cfg.cfo_hz = 6e3;
  cfg.seed = 5;
  FadingChannel channel(cfg);
  const CxVec rx_wave = channel.transmit(wave);

  const Mcs& m = mcs(7);
  const Bits reference =
      code_data_bits(build_data_bits(subframes[0].psdu, m), m);

  DecodedSubframe results[2];
  for (const bool rte : {false, true}) {
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = subframes[0].receiver;
    rx_cfg.use_rte = rte;
    const CarpoolReceiver rx(rx_cfg);
    const CarpoolRxResult result = rx.receive(rx_wave);
    if (result.subframes.empty()) {
      std::printf("decode failed entirely\n");
      return 1;
    }
    results[rte ? 1 : 0] = result.subframes.front();
  }
  const DecodedSubframe& rte_sub = results[1];

  std::printf("Side channel, first 16 payload symbols (2-bit CRC each):\n");
  std::printf("%8s %10s %10s %10s\n", "symbol", "injected", "decoded",
              "verified");
  for (std::size_t s = 0; s < 16 && s < rte_sub.side_bits.size(); ++s) {
    std::printf("%8zu %10u %10u %10s\n", s, injected[s],
                rte_sub.side_bits[s],
                s < rte_sub.group_verified.size()
                    ? (rte_sub.group_verified[s] ? "yes" : "NO")
                    : "-");
  }
  std::size_t side_errors = 0;
  for (std::size_t s = 0;
       s < rte_sub.side_bits.size() && s < injected.size(); ++s) {
    if (rte_sub.side_bits[s] != injected[s]) ++side_errors;
  }
  std::printf("side-channel symbol errors: %zu / %zu\n", side_errors,
              rte_sub.side_bits.size());
  std::printf("data pilots accepted (RTE updates): %zu\n",
              rte_sub.rte_updates);

  std::printf("\nPer-symbol raw BER, standard vs RTE (same received "
              "samples):\n%8s %12s %12s\n", "symbol", "standard", "RTE");
  const std::size_t n = results[0].raw_symbol_bits.size();
  for (std::size_t s = 0; s < n; s += n / 12 + 1) {
    const std::span<const std::uint8_t> want(reference.data() + s * m.n_cbps,
                                             m.n_cbps);
    const double std_ber =
        static_cast<double>(
            hamming_distance(results[0].raw_symbol_bits[s], want)) /
        static_cast<double>(m.n_cbps);
    const double rte_ber =
        static_cast<double>(
            hamming_distance(results[1].raw_symbol_bits[s], want)) /
        static_cast<double>(m.n_cbps);
    std::printf("%8zu %12.4f %12.4f\n", s, std_ber, rte_ber);
  }
  std::printf("\nFCS check: standard %s, RTE %s\n",
              results[0].fcs_ok ? "PASS" : "fail",
              results[1].fcs_ok ? "PASS" : "fail");
  return 0;
}
