// Quickstart: aggregate frames for three stations into one Carpool
// transmission, push it through an indoor fading channel, and decode at
// every station — the end-to-end flow of paper Fig. 2.
//
//   AP ──[preamble | A-HDR | SIG₀ data₀ | SIG₁ data₁ | SIG₂ data₂]──> air
//   STA k: check A-HDR -> locate subframe k -> decode only that part.

#include <cstdio>
#include <string>

#include "carpool/transceiver.hpp"
#include "channel/fading.hpp"
#include "common/rng.hpp"

using namespace carpool;

int main() {
  // 1. Three stations, each with its own payload and MCS.
  const std::string messages[3] = {
      "Hello STA A — this rode in subframe 0",
      "Hi STA B — subframe 1 here, QAM16",
      "Hey STA C — 64-QAM subframe 2",
  };
  const std::size_t mcs_per_sta[3] = {2, 4, 7};  // QPSK, QAM16, QAM64

  std::vector<SubframeSpec> subframes;
  for (int i = 0; i < 3; ++i) {
    Bytes payload(messages[i].begin(), messages[i].end());
    subframes.push_back(SubframeSpec{
        MacAddress::for_station(static_cast<std::uint32_t>(i + 1)),
        append_fcs(payload), mcs_per_sta[i]});
  }

  // 2. Build the aggregate waveform (A-HDR Bloom filter + per-subframe
  //    SIG + phase-offset side channel, all on by default).
  const CarpoolTransmitter tx;
  const CxVec waveform = tx.build(subframes);
  std::printf("Carpool frame: %zu subframes, %zu samples, %.1f us airtime\n",
              subframes.size(), waveform.size(),
              CarpoolTransmitter::frame_airtime(subframes) * 1e6);

  // 3. One shared channel realisation — every station hears the same air.
  FadingConfig channel_cfg;
  channel_cfg.snr_db = 28.0;
  channel_cfg.coherence_time = 10e-3;
  channel_cfg.cfo_hz = 5e3;
  channel_cfg.seed = 7;
  FadingChannel channel(channel_cfg);
  const CxVec rx_waveform = channel.transmit(waveform);

  // 4. Each station decodes: A-HDR match -> skip foreign subframes ->
  //    decode its own (with real-time channel estimation).
  for (int i = 0; i < 3; ++i) {
    CarpoolRxConfig rx_cfg;
    rx_cfg.self = subframes[static_cast<std::size_t>(i)].receiver;
    const CarpoolReceiver rx(rx_cfg);
    const CarpoolRxResult result = rx.receive(rx_waveform);

    std::printf("\nSTA %c: A-HDR matched subframes {", 'A' + i);
    for (const std::size_t m : result.matched) std::printf(" %zu", m);
    std::printf(" }, %zu symbols decoded, %zu pilot-only\n",
                result.symbols_full_decoded, result.symbols_pilot_only);
    for (const DecodedSubframe& sub : result.subframes) {
      if (sub.index != static_cast<std::size_t>(i)) continue;
      if (!sub.fcs_ok) {
        std::printf("  subframe %zu: FCS FAILED\n", sub.index);
        continue;
      }
      const std::string text(sub.psdu.begin(), sub.psdu.end() - 4);
      std::printf("  subframe %zu OK (%zu RTE updates): \"%s\"\n", sub.index,
                  sub.rte_updates, text.c_str());
    }
  }

  // 5. A bystander station drops the frame after the A-HDR alone.
  CarpoolRxConfig bystander_cfg;
  bystander_cfg.self = MacAddress::for_station(1000);
  const CarpoolReceiver bystander(bystander_cfg);
  const CarpoolRxResult result = bystander.receive(rx_waveform);
  std::printf("\nBystander: %s (decoded %zu payload symbols)\n",
              result.matched.empty() ? "dropped frame at A-HDR"
                                     : "Bloom false positive",
              result.symbols_full_decoded);
  return 0;
}
