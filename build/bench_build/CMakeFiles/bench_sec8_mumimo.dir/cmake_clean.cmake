file(REMOVE_RECURSE
  "../bench/bench_sec8_mumimo"
  "../bench/bench_sec8_mumimo.pdb"
  "CMakeFiles/bench_sec8_mumimo.dir/bench_sec8_mumimo.cpp.o"
  "CMakeFiles/bench_sec8_mumimo.dir/bench_sec8_mumimo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_mumimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
