# Empty dependencies file for bench_sec8_mumimo.
# This may be replaced when dependencies are built.
