file(REMOVE_RECURSE
  "../bench/bench_fig16_background"
  "../bench/bench_fig16_background.pdb"
  "CMakeFiles/bench_fig16_background.dir/bench_fig16_background.cpp.o"
  "CMakeFiles/bench_fig16_background.dir/bench_fig16_background.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
