file(REMOVE_RECURSE
  "../bench/bench_fig17_latency_frames"
  "../bench/bench_fig17_latency_frames.pdb"
  "CMakeFiles/bench_fig17_latency_frames.dir/bench_fig17_latency_frames.cpp.o"
  "CMakeFiles/bench_fig17_latency_frames.dir/bench_fig17_latency_frames.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_latency_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
