# Empty dependencies file for bench_fig17_latency_frames.
# This may be replaced when dependencies are built.
