
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench_build/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench_build/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/carpool/CMakeFiles/carpool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/carpool_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/carpool_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/carpool_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/carpool_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/carpool_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/carpool_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/carpool_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carpool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
