# Empty dependencies file for bench_fig15_voip.
# This may be replaced when dependencies are built.
