file(REMOVE_RECURSE
  "../bench/bench_fig15_voip"
  "../bench/bench_fig15_voip.pdb"
  "CMakeFiles/bench_fig15_voip.dir/bench_fig15_voip.cpp.o"
  "CMakeFiles/bench_fig15_voip.dir/bench_fig15_voip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_voip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
