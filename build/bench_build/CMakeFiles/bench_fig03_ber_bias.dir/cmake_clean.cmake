file(REMOVE_RECURSE
  "../bench/bench_fig03_ber_bias"
  "../bench/bench_fig03_ber_bias.pdb"
  "CMakeFiles/bench_fig03_ber_bias.dir/bench_fig03_ber_bias.cpp.o"
  "CMakeFiles/bench_fig03_ber_bias.dir/bench_fig03_ber_bias.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ber_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
