# Empty dependencies file for bench_fig03_ber_bias.
# This may be replaced when dependencies are built.
