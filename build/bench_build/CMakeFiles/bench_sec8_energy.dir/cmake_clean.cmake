file(REMOVE_RECURSE
  "../bench/bench_sec8_energy"
  "../bench/bench_sec8_energy.pdb"
  "CMakeFiles/bench_sec8_energy.dir/bench_sec8_energy.cpp.o"
  "CMakeFiles/bench_sec8_energy.dir/bench_sec8_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
