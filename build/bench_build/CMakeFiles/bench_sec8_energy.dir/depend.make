# Empty dependencies file for bench_sec8_energy.
# This may be replaced when dependencies are built.
