# Empty compiler generated dependencies file for bench_fig14_rte_mod.
# This may be replaced when dependencies are built.
