file(REMOVE_RECURSE
  "../bench/bench_fig14_rte_mod"
  "../bench/bench_fig14_rte_mod.pdb"
  "CMakeFiles/bench_fig14_rte_mod.dir/bench_fig14_rte_mod.cpp.o"
  "CMakeFiles/bench_fig14_rte_mod.dir/bench_fig14_rte_mod.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rte_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
