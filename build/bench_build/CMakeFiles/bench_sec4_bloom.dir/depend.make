# Empty dependencies file for bench_sec4_bloom.
# This may be replaced when dependencies are built.
