file(REMOVE_RECURSE
  "../bench/bench_sec4_bloom"
  "../bench/bench_sec4_bloom.pdb"
  "CMakeFiles/bench_sec4_bloom.dir/bench_sec4_bloom.cpp.o"
  "CMakeFiles/bench_sec4_bloom.dir/bench_sec4_bloom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
