file(REMOVE_RECURSE
  "../bench/bench_fig11_impact"
  "../bench/bench_fig11_impact.pdb"
  "CMakeFiles/bench_fig11_impact.dir/bench_fig11_impact.cpp.o"
  "CMakeFiles/bench_fig11_impact.dir/bench_fig11_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
