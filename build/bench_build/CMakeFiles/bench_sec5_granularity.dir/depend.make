# Empty dependencies file for bench_sec5_granularity.
# This may be replaced when dependencies are built.
