file(REMOVE_RECURSE
  "../bench/bench_sec5_granularity"
  "../bench/bench_sec5_granularity.pdb"
  "CMakeFiles/bench_sec5_granularity.dir/bench_sec5_granularity.cpp.o"
  "CMakeFiles/bench_sec5_granularity.dir/bench_sec5_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
