# Empty dependencies file for bench_fig13_rte_bias.
# This may be replaced when dependencies are built.
