file(REMOVE_RECURSE
  "../bench/bench_fig13_rte_bias"
  "../bench/bench_fig13_rte_bias.pdb"
  "CMakeFiles/bench_fig13_rte_bias.dir/bench_fig13_rte_bias.cpp.o"
  "CMakeFiles/bench_fig13_rte_bias.dir/bench_fig13_rte_bias.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rte_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
