# Empty compiler generated dependencies file for bench_fig12_sidechannel.
# This may be replaced when dependencies are built.
