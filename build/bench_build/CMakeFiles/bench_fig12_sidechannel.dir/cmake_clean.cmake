file(REMOVE_RECURSE
  "../bench/bench_fig12_sidechannel"
  "../bench/bench_fig12_sidechannel.pdb"
  "CMakeFiles/bench_fig12_sidechannel.dir/bench_fig12_sidechannel.cpp.o"
  "CMakeFiles/bench_fig12_sidechannel.dir/bench_fig12_sidechannel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
