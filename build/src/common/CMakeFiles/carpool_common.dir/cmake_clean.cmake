file(REMOVE_RECURSE
  "CMakeFiles/carpool_common.dir/bits.cpp.o"
  "CMakeFiles/carpool_common.dir/bits.cpp.o.d"
  "CMakeFiles/carpool_common.dir/crc.cpp.o"
  "CMakeFiles/carpool_common.dir/crc.cpp.o.d"
  "CMakeFiles/carpool_common.dir/mac_address.cpp.o"
  "CMakeFiles/carpool_common.dir/mac_address.cpp.o.d"
  "libcarpool_common.a"
  "libcarpool_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
