file(REMOVE_RECURSE
  "libcarpool_common.a"
)
