# Empty compiler generated dependencies file for carpool_common.
# This may be replaced when dependencies are built.
