
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aggregation.cpp" "src/mac/CMakeFiles/carpool_mac.dir/aggregation.cpp.o" "gcc" "src/mac/CMakeFiles/carpool_mac.dir/aggregation.cpp.o.d"
  "/root/repo/src/mac/params.cpp" "src/mac/CMakeFiles/carpool_mac.dir/params.cpp.o" "gcc" "src/mac/CMakeFiles/carpool_mac.dir/params.cpp.o.d"
  "/root/repo/src/mac/phy_model.cpp" "src/mac/CMakeFiles/carpool_mac.dir/phy_model.cpp.o" "gcc" "src/mac/CMakeFiles/carpool_mac.dir/phy_model.cpp.o.d"
  "/root/repo/src/mac/rate_adaptation.cpp" "src/mac/CMakeFiles/carpool_mac.dir/rate_adaptation.cpp.o" "gcc" "src/mac/CMakeFiles/carpool_mac.dir/rate_adaptation.cpp.o.d"
  "/root/repo/src/mac/simulator.cpp" "src/mac/CMakeFiles/carpool_mac.dir/simulator.cpp.o" "gcc" "src/mac/CMakeFiles/carpool_mac.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/carpool/CMakeFiles/carpool_core.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/carpool_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/carpool_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/carpool_fec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
