# Empty dependencies file for carpool_mac.
# This may be replaced when dependencies are built.
