file(REMOVE_RECURSE
  "CMakeFiles/carpool_mac.dir/aggregation.cpp.o"
  "CMakeFiles/carpool_mac.dir/aggregation.cpp.o.d"
  "CMakeFiles/carpool_mac.dir/params.cpp.o"
  "CMakeFiles/carpool_mac.dir/params.cpp.o.d"
  "CMakeFiles/carpool_mac.dir/phy_model.cpp.o"
  "CMakeFiles/carpool_mac.dir/phy_model.cpp.o.d"
  "CMakeFiles/carpool_mac.dir/rate_adaptation.cpp.o"
  "CMakeFiles/carpool_mac.dir/rate_adaptation.cpp.o.d"
  "CMakeFiles/carpool_mac.dir/simulator.cpp.o"
  "CMakeFiles/carpool_mac.dir/simulator.cpp.o.d"
  "libcarpool_mac.a"
  "libcarpool_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
