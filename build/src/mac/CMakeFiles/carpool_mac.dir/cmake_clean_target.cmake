file(REMOVE_RECURSE
  "libcarpool_mac.a"
)
