file(REMOVE_RECURSE
  "libcarpool_sim.a"
)
