# Empty compiler generated dependencies file for carpool_sim.
# This may be replaced when dependencies are built.
