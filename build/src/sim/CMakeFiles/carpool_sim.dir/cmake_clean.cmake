file(REMOVE_RECURSE
  "CMakeFiles/carpool_sim.dir/phy_trace.cpp.o"
  "CMakeFiles/carpool_sim.dir/phy_trace.cpp.o.d"
  "CMakeFiles/carpool_sim.dir/testbed.cpp.o"
  "CMakeFiles/carpool_sim.dir/testbed.cpp.o.d"
  "libcarpool_sim.a"
  "libcarpool_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
