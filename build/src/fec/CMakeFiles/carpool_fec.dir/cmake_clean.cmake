file(REMOVE_RECURSE
  "CMakeFiles/carpool_fec.dir/convolutional.cpp.o"
  "CMakeFiles/carpool_fec.dir/convolutional.cpp.o.d"
  "CMakeFiles/carpool_fec.dir/interleaver.cpp.o"
  "CMakeFiles/carpool_fec.dir/interleaver.cpp.o.d"
  "CMakeFiles/carpool_fec.dir/scrambler.cpp.o"
  "CMakeFiles/carpool_fec.dir/scrambler.cpp.o.d"
  "CMakeFiles/carpool_fec.dir/viterbi.cpp.o"
  "CMakeFiles/carpool_fec.dir/viterbi.cpp.o.d"
  "libcarpool_fec.a"
  "libcarpool_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
