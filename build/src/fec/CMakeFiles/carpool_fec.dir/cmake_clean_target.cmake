file(REMOVE_RECURSE
  "libcarpool_fec.a"
)
