# Empty compiler generated dependencies file for carpool_fec.
# This may be replaced when dependencies are built.
