
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/convolutional.cpp" "src/fec/CMakeFiles/carpool_fec.dir/convolutional.cpp.o" "gcc" "src/fec/CMakeFiles/carpool_fec.dir/convolutional.cpp.o.d"
  "/root/repo/src/fec/interleaver.cpp" "src/fec/CMakeFiles/carpool_fec.dir/interleaver.cpp.o" "gcc" "src/fec/CMakeFiles/carpool_fec.dir/interleaver.cpp.o.d"
  "/root/repo/src/fec/scrambler.cpp" "src/fec/CMakeFiles/carpool_fec.dir/scrambler.cpp.o" "gcc" "src/fec/CMakeFiles/carpool_fec.dir/scrambler.cpp.o.d"
  "/root/repo/src/fec/viterbi.cpp" "src/fec/CMakeFiles/carpool_fec.dir/viterbi.cpp.o" "gcc" "src/fec/CMakeFiles/carpool_fec.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carpool_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
