file(REMOVE_RECURSE
  "CMakeFiles/carpool_dsp.dir/complex_vec.cpp.o"
  "CMakeFiles/carpool_dsp.dir/complex_vec.cpp.o.d"
  "CMakeFiles/carpool_dsp.dir/fft.cpp.o"
  "CMakeFiles/carpool_dsp.dir/fft.cpp.o.d"
  "libcarpool_dsp.a"
  "libcarpool_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
