file(REMOVE_RECURSE
  "libcarpool_dsp.a"
)
