# Empty compiler generated dependencies file for carpool_dsp.
# This may be replaced when dependencies are built.
