file(REMOVE_RECURSE
  "CMakeFiles/carpool_channel.dir/awgn.cpp.o"
  "CMakeFiles/carpool_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/carpool_channel.dir/fading.cpp.o"
  "CMakeFiles/carpool_channel.dir/fading.cpp.o.d"
  "CMakeFiles/carpool_channel.dir/pathloss.cpp.o"
  "CMakeFiles/carpool_channel.dir/pathloss.cpp.o.d"
  "libcarpool_channel.a"
  "libcarpool_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
