# Empty compiler generated dependencies file for carpool_channel.
# This may be replaced when dependencies are built.
