file(REMOVE_RECURSE
  "libcarpool_channel.a"
)
