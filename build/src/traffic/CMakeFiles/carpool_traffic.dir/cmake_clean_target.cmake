file(REMOVE_RECURSE
  "libcarpool_traffic.a"
)
