# Empty compiler generated dependencies file for carpool_traffic.
# This may be replaced when dependencies are built.
