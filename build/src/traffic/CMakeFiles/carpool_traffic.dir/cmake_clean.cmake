file(REMOVE_RECURSE
  "CMakeFiles/carpool_traffic.dir/frame_sizes.cpp.o"
  "CMakeFiles/carpool_traffic.dir/frame_sizes.cpp.o.d"
  "CMakeFiles/carpool_traffic.dir/generators.cpp.o"
  "CMakeFiles/carpool_traffic.dir/generators.cpp.o.d"
  "CMakeFiles/carpool_traffic.dir/trace_synth.cpp.o"
  "CMakeFiles/carpool_traffic.dir/trace_synth.cpp.o.d"
  "libcarpool_traffic.a"
  "libcarpool_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
