file(REMOVE_RECURSE
  "CMakeFiles/carpool_phy.dir/constellation.cpp.o"
  "CMakeFiles/carpool_phy.dir/constellation.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/equalizer.cpp.o"
  "CMakeFiles/carpool_phy.dir/equalizer.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/frame.cpp.o"
  "CMakeFiles/carpool_phy.dir/frame.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/mcs.cpp.o"
  "CMakeFiles/carpool_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/ofdm.cpp.o"
  "CMakeFiles/carpool_phy.dir/ofdm.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/preamble.cpp.o"
  "CMakeFiles/carpool_phy.dir/preamble.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/sig.cpp.o"
  "CMakeFiles/carpool_phy.dir/sig.cpp.o.d"
  "CMakeFiles/carpool_phy.dir/sync.cpp.o"
  "CMakeFiles/carpool_phy.dir/sync.cpp.o.d"
  "libcarpool_phy.a"
  "libcarpool_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
