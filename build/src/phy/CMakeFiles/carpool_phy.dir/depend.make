# Empty dependencies file for carpool_phy.
# This may be replaced when dependencies are built.
