
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/constellation.cpp" "src/phy/CMakeFiles/carpool_phy.dir/constellation.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/constellation.cpp.o.d"
  "/root/repo/src/phy/equalizer.cpp" "src/phy/CMakeFiles/carpool_phy.dir/equalizer.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/equalizer.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/phy/CMakeFiles/carpool_phy.dir/frame.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/frame.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/carpool_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/mcs.cpp.o.d"
  "/root/repo/src/phy/ofdm.cpp" "src/phy/CMakeFiles/carpool_phy.dir/ofdm.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/ofdm.cpp.o.d"
  "/root/repo/src/phy/preamble.cpp" "src/phy/CMakeFiles/carpool_phy.dir/preamble.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/preamble.cpp.o.d"
  "/root/repo/src/phy/sig.cpp" "src/phy/CMakeFiles/carpool_phy.dir/sig.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/sig.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/carpool_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/carpool_phy.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/carpool_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/carpool_fec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
