file(REMOVE_RECURSE
  "libcarpool_phy.a"
)
