
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/carpool/ack.cpp" "src/carpool/CMakeFiles/carpool_core.dir/ack.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/ack.cpp.o.d"
  "/root/repo/src/carpool/ahdr.cpp" "src/carpool/CMakeFiles/carpool_core.dir/ahdr.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/ahdr.cpp.o.d"
  "/root/repo/src/carpool/bloom.cpp" "src/carpool/CMakeFiles/carpool_core.dir/bloom.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/bloom.cpp.o.d"
  "/root/repo/src/carpool/compat.cpp" "src/carpool/CMakeFiles/carpool_core.dir/compat.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/compat.cpp.o.d"
  "/root/repo/src/carpool/mumimo.cpp" "src/carpool/CMakeFiles/carpool_core.dir/mumimo.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/mumimo.cpp.o.d"
  "/root/repo/src/carpool/rtscts.cpp" "src/carpool/CMakeFiles/carpool_core.dir/rtscts.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/rtscts.cpp.o.d"
  "/root/repo/src/carpool/side_channel.cpp" "src/carpool/CMakeFiles/carpool_core.dir/side_channel.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/side_channel.cpp.o.d"
  "/root/repo/src/carpool/transceiver.cpp" "src/carpool/CMakeFiles/carpool_core.dir/transceiver.cpp.o" "gcc" "src/carpool/CMakeFiles/carpool_core.dir/transceiver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carpool_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/carpool_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/carpool_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/carpool_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
