file(REMOVE_RECURSE
  "libcarpool_core.a"
)
