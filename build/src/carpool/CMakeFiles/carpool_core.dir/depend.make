# Empty dependencies file for carpool_core.
# This may be replaced when dependencies are built.
