file(REMOVE_RECURSE
  "CMakeFiles/carpool_core.dir/ack.cpp.o"
  "CMakeFiles/carpool_core.dir/ack.cpp.o.d"
  "CMakeFiles/carpool_core.dir/ahdr.cpp.o"
  "CMakeFiles/carpool_core.dir/ahdr.cpp.o.d"
  "CMakeFiles/carpool_core.dir/bloom.cpp.o"
  "CMakeFiles/carpool_core.dir/bloom.cpp.o.d"
  "CMakeFiles/carpool_core.dir/compat.cpp.o"
  "CMakeFiles/carpool_core.dir/compat.cpp.o.d"
  "CMakeFiles/carpool_core.dir/mumimo.cpp.o"
  "CMakeFiles/carpool_core.dir/mumimo.cpp.o.d"
  "CMakeFiles/carpool_core.dir/rtscts.cpp.o"
  "CMakeFiles/carpool_core.dir/rtscts.cpp.o.d"
  "CMakeFiles/carpool_core.dir/side_channel.cpp.o"
  "CMakeFiles/carpool_core.dir/side_channel.cpp.o.d"
  "CMakeFiles/carpool_core.dir/transceiver.cpp.o"
  "CMakeFiles/carpool_core.dir/transceiver.cpp.o.d"
  "libcarpool_core.a"
  "libcarpool_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
