# Empty dependencies file for conference_hall.
# This may be replaced when dependencies are built.
