file(REMOVE_RECURSE
  "CMakeFiles/conference_hall.dir/conference_hall.cpp.o"
  "CMakeFiles/conference_hall.dir/conference_hall.cpp.o.d"
  "conference_hall"
  "conference_hall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
