file(REMOVE_RECURSE
  "CMakeFiles/side_channel_demo.dir/side_channel_demo.cpp.o"
  "CMakeFiles/side_channel_demo.dir/side_channel_demo.cpp.o.d"
  "side_channel_demo"
  "side_channel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/side_channel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
