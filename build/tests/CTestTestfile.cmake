# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_fec[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_carpool[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_phy_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_ack_fairness[1]_include.cmake")
