file(REMOVE_RECURSE
  "CMakeFiles/test_carpool.dir/test_carpool.cpp.o"
  "CMakeFiles/test_carpool.dir/test_carpool.cpp.o.d"
  "test_carpool"
  "test_carpool.pdb"
  "test_carpool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_carpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
