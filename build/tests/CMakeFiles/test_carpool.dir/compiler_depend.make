# Empty compiler generated dependencies file for test_carpool.
# This may be replaced when dependencies are built.
