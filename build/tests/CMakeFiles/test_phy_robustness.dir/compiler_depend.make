# Empty compiler generated dependencies file for test_phy_robustness.
# This may be replaced when dependencies are built.
