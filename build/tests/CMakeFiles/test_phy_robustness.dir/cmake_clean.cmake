file(REMOVE_RECURSE
  "CMakeFiles/test_phy_robustness.dir/test_phy_robustness.cpp.o"
  "CMakeFiles/test_phy_robustness.dir/test_phy_robustness.cpp.o.d"
  "test_phy_robustness"
  "test_phy_robustness.pdb"
  "test_phy_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
