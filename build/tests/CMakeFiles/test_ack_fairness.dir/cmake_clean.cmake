file(REMOVE_RECURSE
  "CMakeFiles/test_ack_fairness.dir/test_ack_fairness.cpp.o"
  "CMakeFiles/test_ack_fairness.dir/test_ack_fairness.cpp.o.d"
  "test_ack_fairness"
  "test_ack_fairness.pdb"
  "test_ack_fairness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ack_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
