# Empty compiler generated dependencies file for test_ack_fairness.
# This may be replaced when dependencies are built.
